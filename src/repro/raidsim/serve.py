"""The serve tier: rebuild under open-loop traffic, judged by SLOs.

The fault campaign (:mod:`repro.raidsim.campaign`) asks "how fast does
each arrangement rebuild, and what latency did the probe reads see?".
This tier asks the operator's question instead: *while* the rebuild
runs, an open-loop population of viewers keeps arriving on the wall
clock — what tail latency do they eat, how much goodput survives, and
how much rebuild speed must be sacrificed (via a throttling policy) to
keep the p99 inside the SLO?  Reported per arrangement, because the
paper's whole point is that the shifted arrangement buys this tradeoff
a better exchange rate.

Everything is a pure function of :class:`ServeConfig` — frozen,
picklable, seeded — so two same-config runs are bit-identical and
:func:`compare_serve` can be shipped to a
:class:`~repro.core.parallel.WorkerPool` worker as-is.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.registry import build_layout, comparison_pair
from ..obs import scoped_recorder
from ..disksim.array import DEFAULT_ELEMENT_SIZE
from ..disksim.scheduler import PriorityScheduler
from ..workloads.generator import UserRead
from ..workloads.openloop import (
    DiurnalCurve,
    SLOAccountant,
    SLOSummary,
    TenantSpec,
    make_throttle,
    open_arrivals,
)
from .campaign import clean_rebuild_makespan
from .controller import RaidController
from .reconstruction import OnlineReconstruction

__all__ = [
    "ServeConfig",
    "ServeResult",
    "ServeComparison",
    "serve_arrivals",
    "run_serve",
    "compare_serve",
]


@dataclass(frozen=True)
class ServeConfig:
    """Everything a serve run depends on — the whole experiment, frozen.

    ``tenants`` overrides the single-tenant shorthand fields
    (``rate_per_s`` / ``process`` / ``zipf_s``); leave it ``None`` to
    serve one default tenant built from those.  ``diurnal_amplitude``
    > 0 adds a sinusoidal load curve whose period defaults to the serve
    window (one full peak-and-trough per run) unless
    ``diurnal_period_s`` pins it.  ``throttle`` is a
    :func:`~repro.workloads.openloop.make_throttle` spec string, kept
    as a string precisely so the config stays picklable — each run
    builds its own fresh policy instance.
    """

    family: str = "mirror"
    n: int = 5
    n_stripes: int = 12
    failed_disk: int = 0
    seed: int = 2012
    rate_per_s: float = 40.0
    process: str = "poisson"
    zipf_s: float = 0.0
    diurnal_amplitude: float = 0.0
    diurnal_period_s: float | None = None
    tenants: tuple[TenantSpec, ...] | None = None
    duration_factor: float = 1.5
    deadline_s: float | None = None
    window: int = 4
    throttle: str = "none"
    element_size: int = DEFAULT_ELEMENT_SIZE
    payload_bytes: int = 16
    #: flight-recorder resolution: windows per serve duration (the
    #: recorder's window width is ``duration_s / ts_windows``)
    ts_windows: int = 96

    def __post_init__(self) -> None:
        if self.duration_factor <= 0:
            raise ValueError(
                f"duration_factor must be positive, got {self.duration_factor}"
            )
        if self.ts_windows < 1:
            raise ValueError(f"ts_windows must be >= 1, got {self.ts_windows}")
        # fail fast on a bad spec string — before any simulation runs
        make_throttle(self.throttle)

    def tenant_mix(self) -> tuple[TenantSpec, ...]:
        """The effective mix: explicit tenants, or the shorthand one."""
        if self.tenants:
            return tuple(self.tenants)
        return (
            TenantSpec(
                "default",
                rate_per_s=self.rate_per_s,
                process=self.process,
                zipf_s=self.zipf_s,
            ),
        )


@dataclass(frozen=True)
class ServeResult:
    """One arrangement's rebuild-under-traffic outcome."""

    layout_name: str
    slo: SLOSummary
    rebuild_makespan_s: float
    rebuild_verified: bool
    n_arrivals: int
    degraded_reads: int
    failed_reads: int
    #: fraction of completed reads that did not fail outright
    availability: float
    throttle: str
    #: flight-recorder snapshot ({} when observability is off) —
    #: per-tenant latency, queue depth, rebuild progress/throughput
    #: windows over the simulated clock
    timeseries: dict = field(default_factory=dict, compare=False)
    #: fault-interval overlay bands for dashboard rendering
    overlays: tuple = field(default=(), compare=False)


@dataclass(frozen=True)
class ServeComparison:
    """Traditional vs shifted under the identical arrival stream."""

    traditional: ServeResult
    shifted: ServeResult

    @property
    def p99_ratio(self) -> float:
        """Traditional p99 over shifted p99 (>1 favours shifted).

        ``NaN`` when either side served nothing (the zero-sample
        contract), ``inf`` when shifted's p99 is exactly zero.
        """
        t = self.traditional.slo.p99_s
        s = self.shifted.slo.p99_s
        if math.isnan(t) or math.isnan(s):
            return float("nan")
        if s <= 0:
            return float("inf")
        return t / s

    @property
    def makespan_speedup(self) -> float:
        """Traditional over shifted rebuild makespan (>1 favours shifted)."""
        s = self.shifted.rebuild_makespan_s
        if s <= 0:
            return float("inf")
        return self.traditional.rebuild_makespan_s / s


def serve_duration_s(config: ServeConfig) -> float:
    """The serve window: ``duration_factor`` × the slower clean rebuild.

    Sized off *both* sides of the comparison pair (like the campaign's
    read window) so baseline and variant face the identical arrival
    stream.
    """
    sizing = dict(
        failed_disks=(config.failed_disk,),
        n_stripes=config.n_stripes,
        element_size=config.element_size,
        payload_bytes=config.payload_bytes,
        window=config.window,
    )
    baseline_name, variant_name = comparison_pair(config.family)
    return config.duration_factor * max(
        clean_rebuild_makespan(build_layout(baseline_name, config.n), **sizing),
        clean_rebuild_makespan(build_layout(variant_name, config.n), **sizing),
    )


def serve_arrivals(
    config: ServeConfig, duration_s: float | None = None
) -> list[UserRead]:
    """The config's arrival stream — shared verbatim by both arrangements."""
    if duration_s is None:
        duration_s = serve_duration_s(config)
    diurnal = None
    if config.diurnal_amplitude > 0:
        period = (
            config.diurnal_period_s
            if config.diurnal_period_s is not None
            else duration_s
        )
        diurnal = DiurnalCurve(config.diurnal_amplitude, period)
    return open_arrivals(
        config.n,
        config.n_stripes,
        duration_s,
        config.tenant_mix(),
        diurnal=diurnal,
        seed=config.seed,
    )


def run_serve(
    layout_name: str,
    arrivals: list[UserRead],
    duration_s: float,
    config: ServeConfig,
) -> ServeResult:
    """One arrangement through the open-loop serve scenario.

    Builds a fresh controller and a fresh throttle policy (stateful —
    never share one across arrangements), wires every completed read
    into the :class:`~repro.workloads.openloop.SLOAccountant` and, when
    the policy wants feedback, into its ``observe`` hook, then runs the
    rebuild with the arrivals firing open-loop on the simulated clock.

    The whole run executes under a scoped flight recorder (window
    width ``duration_s / ts_windows``; a no-op when observability is
    off), so the result carries the per-tenant latency, queue-depth
    and rebuild-progress trajectories plus the fault-interval overlay
    bands the dashboard report draws.
    """
    # function-local: repro.nemesis imports raidsim, so a module-level
    # import here would be circular
    from ..nemesis.tracker import FaultInterval, FaultTimeline

    with scoped_recorder(window_s=duration_s / config.ts_windows) as rec:
        ctrl = RaidController(
            build_layout(layout_name, config.n),
            n_stripes=config.n_stripes,
            element_size=config.element_size,
            scheduler_factory=PriorityScheduler,
            payload_bytes=config.payload_bytes,
        )
        throttle = make_throttle(config.throttle)
        slo = SLOAccountant(deadline_s=config.deadline_s)
        observe = getattr(throttle, "observe", None)
        sim = ctrl.array.sim

        def on_latency(read: UserRead, latency_s: float) -> None:
            slo.record(latency_s, tenant=read.tenant, t_s=sim.now)
            slo.observe_queue_depth(sim.pending_count(), t_s=sim.now)
            if observe is not None:
                observe(latency_s)

        online = OnlineReconstruction(
            ctrl,
            (config.failed_disk,),
            arrivals,
            window=config.window,
            throttle_delay_s=throttle,
            on_latency=on_latency,
        ).run()
        timeseries = rec.snapshot() if rec is not None else {}
    slo.record_failure(online.failed_user_reads)
    summary = slo.summary(duration_s)
    served = summary.served
    availability = 1.0 - online.failed_user_reads / served if served > 0 else 1.0
    timeline = FaultTimeline()
    timeline.record(
        FaultInterval(
            0, "disk-death", config.failed_disk, 0.0, online.rebuild.makespan_s
        )
    )
    return ServeResult(
        layout_name=layout_name,
        slo=summary,
        rebuild_makespan_s=online.rebuild.makespan_s,
        rebuild_verified=online.rebuild.verified,
        n_arrivals=len(arrivals),
        degraded_reads=online.degraded_reads,
        failed_reads=online.failed_user_reads,
        availability=availability,
        throttle=config.throttle,
        timeseries=timeseries,
        overlays=timeline.overlay_bands(horizon_s=duration_s),
    )


def compare_serve(config: ServeConfig) -> ServeComparison:
    """Both arrangements under the identical open-loop storm.

    Module-level and a pure function of the frozen config, so it is
    WorkerPool-safe: a pool worker handed the config reproduces the
    serial run bit for bit.
    """
    duration_s = serve_duration_s(config)
    arrivals = serve_arrivals(config, duration_s)
    baseline_name, variant_name = comparison_pair(config.family)
    return ServeComparison(
        traditional=run_serve(baseline_name, arrivals, duration_s, config),
        shifted=run_serve(variant_name, arrivals, duration_s, config),
    )
