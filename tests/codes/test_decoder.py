"""Unified decoder facade over all four code families."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest

from repro.codes.decoder import (
    EvenOddDecoder,
    RDPDecoder,
    RSDecoder,
    SingleParityDecoder,
)


def _full_devices(decoder, rng):
    rows = getattr(decoder, "rows", 1)
    size = rows * 8
    data = [rng.integers(0, 256, size).astype(np.uint8) for _ in range(decoder.n_data)]
    return decoder.decode(data + [None] * decoder.n_parity)


DECODER_FACTORIES = [
    lambda: SingleParityDecoder(5),
    lambda: RSDecoder(5, 2),
    lambda: RSDecoder(4, 3, w=16),
    lambda: EvenOddDecoder(5),
    lambda: RDPDecoder(5),
]


@pytest.mark.parametrize("factory", DECODER_FACTORIES)
def test_decode_every_max_erasure_pattern(factory, rng):
    dec = factory()
    devices = _full_devices(dec, rng)
    assert len(devices) == dec.n_devices
    for lost in combinations(range(dec.n_devices), dec.fault_tolerance()):
        got = dec.decode([None if i in lost else devices[i] for i in range(dec.n_devices)])
        for i in range(dec.n_devices):
            assert np.array_equal(got[i], devices[i]), (lost, i)


@pytest.mark.parametrize("factory", DECODER_FACTORIES)
def test_too_many_erasures_rejected(factory, rng):
    dec = factory()
    devices = _full_devices(dec, rng)
    k = dec.fault_tolerance() + 1
    broken = [None] * k + devices[k:]
    with pytest.raises(ValueError, match="exceed tolerance"):
        dec.decode(broken)


@pytest.mark.parametrize("factory", DECODER_FACTORIES)
def test_wrong_device_count_rejected(factory):
    dec = factory()
    with pytest.raises(ValueError, match="device slots"):
        dec.decode([None] * (dec.n_devices + 1))


def test_single_parity_recovers_parity_device(rng):
    dec = SingleParityDecoder(3)
    data = [rng.integers(0, 256, 8).astype(np.uint8) for _ in range(3)]
    full = dec.decode(data + [None])
    expected_parity = data[0] ^ data[1] ^ data[2]
    assert np.array_equal(full[3], expected_parity)


def test_evenodd_decoder_picks_shorten_prime():
    assert EvenOddDecoder(5).code.p == 5
    assert EvenOddDecoder(6).code.p == 7
    assert EvenOddDecoder(8).code.p == 11


def test_rdp_decoder_picks_shorten_prime():
    # RDP needs p >= n + 1 data-capable columns
    assert RDPDecoder(4).code.p == 5
    assert RDPDecoder(6).code.p == 7
    assert RDPDecoder(7).code.p == 11


def test_column_decoder_rejects_indivisible_buffers(rng):
    dec = EvenOddDecoder(5)  # rows = 4
    bad = [rng.integers(0, 256, 10).astype(np.uint8) for _ in range(7)]
    with pytest.raises(ValueError, match="divisible"):
        dec.decode(bad)


def test_fault_tolerances():
    assert SingleParityDecoder(4).fault_tolerance() == 1
    assert RSDecoder(4, 3).fault_tolerance() == 3
    assert EvenOddDecoder(4).fault_tolerance() == 2
    assert RDPDecoder(4).fault_tolerance() == 2
