"""Extension experiment: the three-mirror method (paper §VIII).

"In the future, we intend to extend our current shifted element
arrangement to cope with other existing RAID architectures, such as the
three-mirror method used in [8, 9]" — GFS/Ceph-style triple
replication.  This experiment carries that extension out:

* **traditional three-mirror** — two verbatim mirror arrays; the best
  reconstruction can do is split a failed column between its two copy
  disks (ceil(n/2) accesses);
* **shifted three-mirror** — the paper's arrangement on the first
  mirror array and its inverse-shift twin ``a[i,j] -> (<i-j>_n, i)`` on
  the second, so both arrays satisfy Properties 1-3 and any single
  failure rebuilds in one parallel access from either array (or both).

We reproduce the Fig. 9(a)-style sweep for this architecture: average
rebuild read throughput over every single-disk failure, n = 3..7.
"""

from __future__ import annotations

from ..core.arrangement import PermutationArrangement, ShiftedArrangement
from ..core.layouts import ThreeMirrorLayout
from ..raidsim.availability import average_reconstruction_throughput
from .reporting import ExperimentResult, format_series

__all__ = ["reverse_shift", "traditional_three_mirror", "shifted_three_mirror", "run"]


def reverse_shift(n: int) -> PermutationArrangement:
    """The inverse-shift twin arrangement ``a[i, j] -> (<i - j>_n, i)``."""
    return PermutationArrangement(
        n, {(i, j): ((i - j) % n, i) for i in range(n) for j in range(n)}
    )


def traditional_three_mirror(n: int) -> ThreeMirrorLayout:
    """Triple replication with two verbatim mirror arrays."""
    return ThreeMirrorLayout(n)


def shifted_three_mirror(n: int) -> ThreeMirrorLayout:
    """The §VIII extension: shifted + inverse-shift mirror arrays."""
    return ThreeMirrorLayout(n, ShiftedArrangement(n), reverse_shift(n))


def run(n_values=(3, 4, 5, 6, 7), n_stripes: int = 12) -> ExperimentResult:
    """Average rebuild throughput over all single failures, both variants."""
    builders = {
        "traditional three-mirror (MB/s)": traditional_three_mirror,
        "shifted three-mirror (MB/s)": shifted_three_mirror,
    }
    series = {name: [] for name in builders}
    verified = True
    for n in n_values:
        for name, builder in builders.items():
            point = average_reconstruction_throughput(
                (lambda n=n, b=builder: b(n)), n_failed=1, n_stripes=n_stripes
            )
            series[name].append(point.mean_read_throughput_mbps)
            verified &= point.all_verified
    trad = series["traditional three-mirror (MB/s)"]
    shif = series["shifted three-mirror (MB/s)"]
    series["improvement (x)"] = [s / t for s, t in zip(shif, trad)]
    text = format_series("n", list(n_values), series, precision=2)
    text += f"\nall reconstructions verified: {verified}"
    return ExperimentResult(
        experiment_id="ext-three-mirror",
        description="§VIII extension: reconstruction throughput of the three-mirror method",
        text=text,
        data={"n": list(n_values), **series, "verified": verified},
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
