"""Cauchy Reed-Solomon bit-matrix coding."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.bitmatrix import (
    BitMatrixCode,
    CauchyRSCode,
    gf_constant_to_bitmatrix,
    gf_matrix_to_bitmatrix,
)
from repro.codes.galois import GF
from repro.codes.matrix import identity


def _bits(value: int, w: int) -> np.ndarray:
    return np.array([(value >> b) & 1 for b in range(w)], dtype=np.uint8)


# ----------------------------------------------------------------------
# bit-matrix expansion
# ----------------------------------------------------------------------


@given(c=st.integers(0, 255), x=st.integers(0, 255))
@settings(max_examples=80)
def test_bitmatrix_multiplication_matches_field(c, x):
    """M_c @ bits(x) == bits(c * x) over GF(2) — the defining identity."""
    gf = GF(8)
    m = gf_constant_to_bitmatrix(c, gf)
    got = (m @ _bits(x, 8)) % 2
    assert np.array_equal(got, _bits(gf.multiply(c, x), 8))


def test_bitmatrix_of_one_is_identity():
    gf = GF(8)
    assert np.array_equal(gf_constant_to_bitmatrix(1, gf), np.eye(8, dtype=np.uint8))


def test_bitmatrix_of_zero_is_zero():
    gf = GF(4)
    assert not gf_constant_to_bitmatrix(0, gf).any()


def test_matrix_expansion_shape_and_blocks():
    gf = GF(4)
    mat = np.array([[1, 2], [3, 0]], dtype=np.uint8)
    bits = gf_matrix_to_bitmatrix(mat, gf)
    assert bits.shape == (8, 8)
    assert np.array_equal(bits[:4, :4], np.eye(4, dtype=np.uint8))
    assert not bits[4:, 4:].any()


# ----------------------------------------------------------------------
# CRS code
# ----------------------------------------------------------------------


def _data(rng, k, w, psize=16):
    return [rng.integers(0, 256, w * psize).astype(np.uint8) for _ in range(k)]


@pytest.mark.parametrize("k,m,w", [(3, 2, 4), (4, 2, 8), (5, 3, 8)])
def test_crs_decode_every_erasure_pattern(k, m, w, rng):
    code = CauchyRSCode(k, m, w)
    data = _data(rng, k, w)
    devices = data + code.encode(data)
    for lost in combinations(range(k + m), m):
        got = code.decode([None if i in lost else devices[i] for i in range(k + m)])
        for i in range(k + m):
            assert np.array_equal(got[i], devices[i]), (lost, i)


def test_crs_matches_bitmatrix_reference_encode(rng):
    """The XOR-only encoder agrees with a direct (slow) application of
    the expanded binary generator to the packet vectors."""
    k, m, w = 3, 2, 8
    code = CauchyRSCode(k, m, w)
    data = _data(rng, k, w, psize=4)
    coding = code.encode(data)
    psize = data[0].size // w
    packets = [d.reshape(w, psize) for d in data]
    bits = code.coding_bitmatrix
    for i in range(m):
        expect = np.zeros((w, psize), dtype=np.uint8)
        for r in range(w):
            for col in np.nonzero(bits[i * w + r])[0]:
                j, s = divmod(int(col), w)
                expect[r] ^= packets[j][s]
        assert np.array_equal(coding[i], expect.reshape(-1))


def test_crs_encode_is_xor_linear(rng):
    code = CauchyRSCode(3, 2, 8)
    a = _data(rng, 3, 8)
    b = _data(rng, 3, 8)
    ca, cb = code.encode(a), code.encode(b)
    cab = code.encode([x ^ y for x, y in zip(a, b)])
    for x, y, z in zip(ca, cb, cab):
        assert np.array_equal(x ^ y, z)


def test_region_divisibility_enforced(rng):
    code = CauchyRSCode(2, 1, 8)
    with pytest.raises(ValueError, match="packets"):
        code.encode([np.zeros(9, dtype=np.uint8), np.zeros(9, dtype=np.uint8)])


def test_unequal_regions_rejected():
    code = CauchyRSCode(2, 1, 4)
    with pytest.raises(ValueError, match="equal length"):
        code.encode([np.zeros(8, dtype=np.uint8), np.zeros(16, dtype=np.uint8)])


def test_too_many_erasures_rejected(rng):
    code = CauchyRSCode(3, 2, 4)
    data = _data(rng, 3, 4)
    devices = data + code.encode(data)
    with pytest.raises(ValueError, match="exceed tolerance"):
        code.decode([None, None, None, devices[3], devices[4]])


def test_field_too_small_rejected():
    with pytest.raises(ValueError, match="field size"):
        CauchyRSCode(10, 8, 4)


def test_non_systematic_matrix_rejected():
    gf = GF(4)
    bad = np.ones((4, 2), dtype=np.uint8)
    with pytest.raises(ValueError, match="systematic"):
        BitMatrixCode(2, 2, bad, gf)


def test_xor_count_positive_and_consistent():
    code = CauchyRSCode(4, 2, 8)
    ones = int(code.coding_bitmatrix.sum())
    assert code.encode_xor_count() == ones - 2 * 8
    assert code.encode_xor_count() > 0


@given(seed=st.integers(0, 2**31))
@settings(max_examples=15, deadline=None)
def test_crs_random_roundtrip(seed):
    rng = np.random.default_rng(seed)
    code = CauchyRSCode(4, 2, 4)
    data = _data(rng, 4, 4, psize=8)
    devices = data + code.encode(data)
    lost = sorted(rng.choice(6, size=2, replace=False).tolist())
    got = code.decode([None if i in lost else devices[i] for i in range(6)])
    for i in range(6):
        assert np.array_equal(got[i], devices[i])
