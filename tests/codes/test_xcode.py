"""X-Code: vertical RAID 6 — geometry, update optimality, exhaustive decode."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.xcode import XCode

PRIMES = [5, 7, 11, 13]


def _stripe(rng, p, size=8):
    return rng.integers(0, 256, (p - 2, p, size)).astype(np.uint8)


# ----------------------------------------------------------------------
# construction and geometry
# ----------------------------------------------------------------------


def test_requires_prime_at_least_five():
    with pytest.raises(ValueError):
        XCode(4)
    with pytest.raises(ValueError):
        XCode(3)  # p-2 = 1 data row but diagonals degenerate; paper needs p >= 5
    with pytest.raises(ValueError):
        XCode(9)


def test_shapes():
    code = XCode(7)
    assert code.data_rows == 5
    rng = np.random.default_rng(0)
    data = _stripe(rng, 7)
    diag, anti = code.encode(data)
    assert diag.shape == anti.shape == (7, 8)
    cols = code.full_columns(data)
    assert len(cols) == 7
    assert cols[0].shape == (7, 8)


def test_bad_stripe_shape_rejected(rng):
    with pytest.raises(ValueError, match="shape"):
        XCode(5).encode(rng.integers(0, 256, (4, 5, 8)).astype(np.uint8))


def test_parity_definitions(rng):
    """Spot-check the defining sums against a direct loop."""
    p = 5
    code = XCode(p)
    data = _stripe(rng, p)
    diag, anti = code.encode(data)
    for i in range(p):
        d = np.zeros(8, dtype=np.uint8)
        a = np.zeros(8, dtype=np.uint8)
        for k in range(p - 2):
            d ^= data[k, (i + k + 2) % p]
            a ^= data[k, (i - k - 2) % p]
        assert np.array_equal(diag[i], d)
        assert np.array_equal(anti[i], a)


def test_update_optimality_two_parity_cells_per_element(rng):
    """Flip one data element: exactly one diagonal and one anti-diagonal
    parity cell change — X-Code is update-optimal, unlike EVENODD/RDP."""
    p = 7
    code = XCode(p)
    data = _stripe(rng, p)
    diag0, anti0 = code.encode(data)
    for k, j in [(0, 0), (2, 3), (4, 6)]:
        mutated = data.copy()
        mutated[k, j] ^= 0x5A
        diag1, anti1 = code.encode(mutated)
        d_dirty = [i for i in range(p) if not np.array_equal(diag0[i], diag1[i])]
        a_dirty = [i for i in range(p) if not np.array_equal(anti0[i], anti1[i])]
        assert len(d_dirty) == 1 and len(a_dirty) == 1
        assert d_dirty[0] == (j - k - 2) % p
        assert a_dirty[0] == (j + k + 2) % p
    assert code.elements_updated_per_write() == 3


# ----------------------------------------------------------------------
# decoding — exhaustive over column-erasure pairs
# ----------------------------------------------------------------------


@pytest.mark.parametrize("p", PRIMES)
def test_decode_every_single_and_double_column_erasure(p, rng):
    code = XCode(p)
    data = _stripe(rng, p)
    cols = code.full_columns(data)
    full = np.stack(cols, axis=1)  # (p rows, p cols, size)
    patterns = [(j,) for j in range(p)] + list(combinations(range(p), 2))
    for lost in patterns:
        survivors = [None if j in lost else cols[j] for j in range(p)]
        grid = code.decode(survivors)
        assert np.array_equal(grid, full), lost


def test_decode_data_view(rng):
    p = 5
    code = XCode(p)
    data = _stripe(rng, p)
    cols = code.full_columns(data)
    got = code.decode_data([None, cols[1], None, cols[3], cols[4]])
    assert np.array_equal(got, data)


def test_triple_erasure_rejected(rng):
    code = XCode(5)
    cols = code.full_columns(_stripe(rng, 5))
    with pytest.raises(ValueError, match="exceed"):
        code.decode([None, None, None, cols[3], cols[4]])


def test_wrong_slot_count_rejected():
    with pytest.raises(ValueError, match="column slots"):
        XCode(5).decode([None] * 4)


def test_wrong_column_shape_rejected(rng):
    code = XCode(5)
    bad = rng.integers(0, 256, (4, 8)).astype(np.uint8)
    with pytest.raises(ValueError, match="rows"):
        code.decode([bad, None, None, bad, bad])


@given(seed=st.integers(0, 2**31))
@settings(max_examples=15, deadline=None)
def test_random_content_random_pair(seed):
    rng = np.random.default_rng(seed)
    p = 11
    code = XCode(p)
    data = _stripe(rng, p, size=4)
    cols = code.full_columns(data)
    lost = sorted(rng.choice(p, size=2, replace=False).tolist())
    got = code.decode_data([None if j in lost else cols[j] for j in range(p)])
    assert np.array_equal(got, data)
