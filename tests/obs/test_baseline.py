"""Baselines: rolling/EWMA/seasonal stats and excursion judgements."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import EWMABaseline, RollingBaseline, SeasonalBaseline, make_baseline
from repro.obs.baseline import BASELINE_KINDS


def test_not_ready_below_min_samples():
    b = RollingBaseline(window=8, min_samples=4)
    for v in (1.0, 2.0, 3.0):
        b.update(v)
    assert not b.ready
    # an unready baseline never flags
    assert not b.is_excursion(1e9)
    b.update(4.0)
    assert b.ready


def test_mean_and_std_track_the_window():
    b = RollingBaseline(window=4, min_samples=2)
    for v in (1.0, 2.0, 3.0, 4.0, 5.0, 6.0):
        b.update(v)
    window = [3.0, 4.0, 5.0, 6.0]
    assert b.mean == pytest.approx(np.mean(window))
    assert b.std == pytest.approx(np.std(window))


def test_high_excursion_needs_both_relative_and_z_margin():
    b = RollingBaseline(window=16, min_samples=4)
    rng = np.random.default_rng(0)
    for _ in range(16):
        b.update(1.0 + 0.01 * float(rng.standard_normal()))
    assert b.is_excursion(2.0, rel_threshold=0.5, z_threshold=4.0)
    # large z but tiny relative move: not an excursion
    assert not b.is_excursion(1.1, rel_threshold=0.5, z_threshold=4.0)


def test_zero_variance_baseline_uses_the_relative_test_alone():
    b = RollingBaseline(window=8, min_samples=2)
    for _ in range(8):
        b.update(1.0)
    assert b.std == 0.0
    assert b.is_excursion(1.6, rel_threshold=0.5, z_threshold=4.0)
    assert not b.is_excursion(1.4, rel_threshold=0.5, z_threshold=4.0)


def test_low_direction_mirrors_high():
    b = RollingBaseline(window=8, min_samples=2)
    for _ in range(8):
        b.update(100.0)
    assert b.is_excursion(10.0, rel_threshold=0.5, direction="low")
    assert not b.is_excursion(60.0, rel_threshold=0.5, direction="low")
    assert not b.is_excursion(200.0, rel_threshold=0.5, direction="low")


def test_validation():
    with pytest.raises(ValueError):
        RollingBaseline(window=0)
    with pytest.raises(ValueError):
        RollingBaseline(window=4, min_samples=0)
    b = RollingBaseline(window=4, min_samples=2)
    b.update(1.0)
    b.update(1.0)
    with pytest.raises(ValueError):
        b.is_excursion(1.0, direction="sideways")


def test_non_finite_samples_are_rejected():
    """Regression: one NaN used to poison the running sums forever."""
    b = RollingBaseline(window=4, min_samples=2)
    b.update(1.0)
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(ValueError, match="finite"):
            b.update(bad)
    b.update(3.0)
    assert b.mean == pytest.approx(2.0)


# ----------------------------------------------------------------------
# EWMA baseline: long memory catches what a short window re-centres on
# ----------------------------------------------------------------------


def test_ewma_tracks_mean_and_noise_spread():
    b = EWMABaseline(alpha=0.2, min_samples=2)
    rng = np.random.default_rng(1)
    for _ in range(200):
        b.update(10.0 + 0.1 * float(rng.standard_normal()))
    assert b.ready
    assert b.mean == pytest.approx(10.0, abs=0.2)
    # first-difference spread recovers the per-sample noise sigma
    assert b.std == pytest.approx(0.1, rel=0.5)


def test_ewma_flags_slow_drift_that_a_rolling_window_absorbs():
    """Regression for the drift blind spot: a rolling window re-centres
    on a creeping ramp and never fires, while the EWMA's mean lags the
    ramp by ``rate / alpha`` but its first-difference spread stays at
    the noise floor — so the drifted value clears both tests."""
    ewma = EWMABaseline(alpha=0.05, min_samples=8)
    rolling = RollingBaseline(window=16, min_samples=8)
    rng = np.random.default_rng(42)
    ewma_flags = rolling_flags = 0
    for k in range(300):
        value = 1.0 + 0.003 * k + 0.01 * float(rng.standard_normal())
        kwargs = dict(rel_threshold=0.02, z_threshold=4.0)
        ewma_flags += ewma.is_excursion(value, **kwargs)
        rolling_flags += rolling.is_excursion(value, **kwargs)
        ewma.update(value)
        rolling.update(value)
    assert rolling_flags == 0  # the window re-centred on the drift
    assert ewma_flags > 100  # the EWMA kept flagging it


def test_ewma_validation_and_abstention():
    with pytest.raises(ValueError):
        EWMABaseline(alpha=0.0)
    with pytest.raises(ValueError):
        EWMABaseline(alpha=1.5)
    with pytest.raises(ValueError):
        EWMABaseline(min_samples=1)
    b = EWMABaseline(min_samples=4)
    b.update(1.0)
    assert not b.ready and not b.is_excursion(1e9)
    with pytest.raises(ValueError, match="finite"):
        b.update(float("nan"))


# ----------------------------------------------------------------------
# seasonal baseline: per-phase judgement for periodic load
# ----------------------------------------------------------------------


def test_seasonal_judges_each_phase_against_its_own_regime():
    b = SeasonalBaseline(period_s=100.0, n_phases=2, min_samples=2)
    rng = np.random.default_rng(3)
    for day in range(8):
        t0 = day * 100.0
        for k in range(4):
            b.update(10.0 + 0.05 * float(rng.standard_normal()), t_s=t0 + 10 * k)
            b.update(1.0 + 0.05 * float(rng.standard_normal()), t_s=t0 + 50 + 10 * k)
    kwargs = dict(rel_threshold=0.5, z_threshold=4.0)
    # 5.0 is ordinary at the daily peak but an excursion at the trough
    assert not b.is_excursion(5.0, t_s=810.0, **kwargs)
    assert b.is_excursion(5.0, t_s=860.0, **kwargs)
    # a single pooled window smears the regimes and misses it
    pooled = RollingBaseline(window=64, min_samples=2)
    rng = np.random.default_rng(3)
    for day in range(8):
        for k in range(4):
            pooled.update(10.0 + 0.05 * float(rng.standard_normal()))
            pooled.update(1.0 + 0.05 * float(rng.standard_normal()))
    assert not pooled.is_excursion(5.0, **kwargs)


def test_seasonal_phase_of_wraps_the_period():
    b = SeasonalBaseline(period_s=86_400.0, n_phases=24)
    assert b.phase_of(0.0) == 0
    assert b.phase_of(3_600.0) == 1
    assert b.phase_of(86_400.0 + 3_600.0) == 1  # next day, same hour
    assert b.phase_of(86_399.9) == 23
    assert b.time_aware is True


def test_seasonal_validation():
    with pytest.raises(ValueError):
        SeasonalBaseline(period_s=0.0)
    with pytest.raises(ValueError):
        SeasonalBaseline(n_phases=1)


# ----------------------------------------------------------------------
# the factory
# ----------------------------------------------------------------------


def test_make_baseline_builds_each_kind():
    assert isinstance(make_baseline("rolling", window=8), RollingBaseline)
    e = make_baseline("ewma", alpha=0.25, min_samples=3)
    assert isinstance(e, EWMABaseline)
    assert e.alpha == 0.25 and e.min_samples == 3
    s = make_baseline("seasonal", period_s=10.0, n_phases=5)
    assert isinstance(s, SeasonalBaseline)
    assert s.period_s == 10.0 and s.n_phases == 5
    with pytest.raises(ValueError, match="unknown baseline kind"):
        make_baseline("fourier")
    assert set(BASELINE_KINDS) == {"rolling", "ewma", "seasonal"}
