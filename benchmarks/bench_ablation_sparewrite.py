"""Ablation: does writing the rebuilt data to a hot spare bottleneck?

§VI-B: rapid reads "may potentially improve reconstruction efficiency,
especially for disk arrays where write speed is faster than read speed
(for example, in our experiment environment)".  On the Savvio model
(130 MB/s write vs 54.8 MB/s read) the spare's sequential writes keep
up with even the shifted arrangement's parallel reads at moderate n —
the rebuild stays read-bound.  On a hypothetical write-limited disk the
spare becomes the bottleneck and the shifted arrangement's read-side
gain is wasted.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.layouts import shifted_mirror, traditional_mirror
from repro.disksim.disk import DiskParameters
from repro.raidsim.controller import RaidController

N = 4
STRIPES = 12


def _rebuild(builder, params, write_spare):
    ctrl = RaidController(
        builder(N),
        n_stripes=STRIPES,
        payload_bytes=8,
        params=params,
        spares=1,
    )
    return ctrl.rebuild([0], write_spare=write_spare)


def test_bench_spare_writes_free_on_paper_disks(benchmark):
    """With 130 MB/s writes, adding the spare write barely moves the
    traditional rebuild and costs the shifted one only modestly."""

    def sweep():
        params = DiskParameters.savvio_10k3()
        out = {}
        for name, builder in (("trad", traditional_mirror), ("shift", shifted_mirror)):
            read_only = _rebuild(builder, params, write_spare=False).makespan_s
            with_spare = _rebuild(builder, params, write_spare=True).makespan_s
            out[name] = (read_only, with_spare)
        return out

    res = run_once(benchmark, sweep)
    for name, (read_only, with_spare) in res.items():
        assert with_spare < 1.35 * read_only, (name, read_only, with_spare)
    benchmark.extra_info["makespans_s"] = {
        k: {"read_only": a, "with_spare": b} for k, (a, b) in res.items()
    }


def test_bench_slow_write_disk_bottlenecks_spare(benchmark):
    """Counterfactual: a disk writing at a third of its read speed turns
    the spare into the bottleneck for the shifted (read-parallel)
    rebuild — the gain over traditional shrinks accordingly."""

    def sweep():
        fast = DiskParameters.savvio_10k3()
        slow = fast.with_overrides(seq_write_mbps=18.0)
        out = {}
        for label, params in (("fast-write", fast), ("slow-write", slow)):
            trad = _rebuild(traditional_mirror, params, write_spare=True).makespan_s
            shift = _rebuild(shifted_mirror, params, write_spare=True).makespan_s
            out[label] = trad / shift
        return out

    gains = run_once(benchmark, sweep)
    assert gains["slow-write"] < 0.7 * gains["fast-write"]
    benchmark.extra_info["rebuild_gain"] = gains
