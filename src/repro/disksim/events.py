"""Discrete-event engine driving a set of independent disk servers.

Each disk is a single server with its own scheduler queue.  The engine
advances a global clock through request-completion events; completion
callbacks may submit further requests (this is how the RAID layer
implements read-before-write dependencies and windowed reconstruction
pipelines).

The engine is deterministic: ties are broken by event sequence number.

Calendars
---------
Two interchangeable event calendars drive the clock (select with the
``calendar=`` argument or ``REPRO_CALENDAR``):

* ``"typed"`` (default) — the opcode calendar of
  :mod:`repro.disksim.calendar`: completions are integer-payload
  events dispatched through a two-entry opcode table, the run loop
  pops whole same-timestamp batches, and — when the pending set is
  completions only, with no callbacks and no fault hooks — the engine
  leaves the per-event loop entirely and computes every disk's
  remaining timeline vectorized (:meth:`Simulation._drain_fast`);
* ``"heapq"`` — the legacy ``(time, seq, action, args)`` tuple heap,
  kept for A/B ablation.  Both calendars produce bit-identical
  results (completion order, clock, busy time, traces); the property
  suite in ``tests/disksim/test_calendar_property.py`` pins this.
"""

from __future__ import annotations

import heapq
import os
from typing import Callable

import numpy as np

from ..obs import default_recorder, default_registry, default_tracer, obs_enabled
from ..obs.tracing import Tracer
from .calendar import OP_COMPLETE, TypedCalendar
from .disk import DiskModel, DiskParameters
from .request import IOKind, IORequest
from .scheduler import ElevatorScheduler, Scheduler

__all__ = ["Simulation"]

Callback = Callable[[IORequest], None]

_MB = 1024 * 1024


class _SimObs:
    """One simulation's observability hooks.

    Instantiated only when observability is on (or a tracer is
    attached); the engine otherwise carries ``_obs = None`` and its hot
    path pays a single ``is not None`` check per completion — the
    null-sink contract gated by ``perfbench --obs-overhead``.
    """

    __slots__ = (
        "group",
        "qd",
        "reads",
        "writes",
        "bytes_read",
        "bytes_written",
        "errors",
        "retries",
        "latency",
        "dispatched",
        "ts_latency",
    )

    def __init__(self, sim: "Simulation", trace) -> None:
        reg = default_registry()
        requests = reg.counter("sim.requests", "completed I/O requests by kind")
        self.reads = requests.labels(kind="read")
        self.writes = requests.labels(kind="write")
        moved = reg.counter("sim.bytes", "bytes moved by completed requests")
        self.bytes_read = moved.labels(kind="read")
        self.bytes_written = moved.labels(kind="write")
        self.errors = reg.counter(
            "sim.request_errors", "requests completed carrying an error flag"
        ).labels()
        self.retries = reg.counter(
            "sim.request_retries", "completed requests that were retries (attempt > 0)"
        ).labels()
        self.latency = reg.histogram(
            "sim.request_latency_s", "submit-to-finish latency of completed requests"
        ).labels()
        self.dispatched = reg.counter(
            "sim.events_dispatched", "calendar events popped by the run loop"
        ).labels()
        qd = reg.gauge(
            "sim.queue_depth", "per-disk scheduler queue depth at last completion"
        )
        self.qd = [qd.labels(disk=str(d)) for d in range(len(sim.disks))]
        # flight-recorder series: windowed latency over the simulated
        # clock (None when no recorder is installed — one `is not None`
        # per completion, same contract as `_obs` itself)
        rec = sim.recorder
        self.ts_latency = (
            rec.series("sim.latency_s", "request latency over simulated time")
            if rec is not None
            else None
        )
        # a bare Tracer gets its own track group; a TraceGroup (handed
        # down by the RAID controller, already labelled) is used as-is
        group = trace.group("array") if isinstance(trace, Tracer) else trace
        if group is not None:
            for d in range(len(sim.disks)):
                group.name_track(d, f"disk {d}")
        self.group = group

    def on_complete(self, request: IORequest, server: "_DiskServer") -> None:
        """Per-completion metrics plus the request's span (if tracing)."""
        if request.kind is IOKind.READ:
            self.reads.inc()
            self.bytes_read.inc(request.size)
        else:
            self.writes.inc()
            self.bytes_written.inc(request.size)
        if request.error:
            self.errors.inc()
        if request.attempt:
            self.retries.inc()
        self.latency.observe(request.finish_time - request.submit_time)
        ts = self.ts_latency
        if ts is not None:
            ts.observe(request.finish_time, request.finish_time - request.submit_time)
        self.qd[request.disk].set(len(server.scheduler))
        group = self.group
        if group is not None:
            self.trace_complete(group, request)

    def trace_complete(self, group, request: IORequest) -> None:
        """Emit one request's completed span (shared with the drain path)."""
        args = {
            "kind": request.kind.value,
            "tag": request.tag,
            "attempt": request.attempt,
            "priority": request.priority,
            "bytes": request.size,
        }
        if request.error:
            args["error"] = request.error_kind
        group.complete(
            request.tag or request.kind.value,
            request.start_time,
            request.finish_time - request.start_time,
            pid=request.disk,
            cat="io",
            **args,
        )

    def on_drain(
        self,
        completed: list[IORequest],
        n_writes: int,
        bytes_written: int,
        bytes_total: int,
    ) -> None:
        """Batched equivalent of per-completion :meth:`on_complete`.

        Updates every instrument to the value the per-event loop would
        have left it at: counters take one ``inc`` per label, the
        latency histogram takes one vectorized ``observe_many`` (bucket
        counts identical, running sum accumulated in the same order),
        queue-depth gauges land on the final depth (0 — the drain ran
        to quiescence), and traces are emitted per request in
        completion order.  The read/write counts and byte totals arrive
        pre-aggregated from the drain's service-time vectorization —
        they are order-independent, so no second pass over the batch is
        needed.
        """
        n = len(completed)
        if not n:
            return
        if n_writes:
            self.writes.inc(n_writes)
            self.bytes_written.inc(bytes_written)
        if n_writes < n:
            self.reads.inc(n - n_writes)
            self.bytes_read.inc(bytes_total - bytes_written)
        n_errors = 0
        n_retries = 0
        for r in completed:
            if r.error:
                n_errors += 1
            if r.attempt:
                n_retries += 1
        if n_errors:
            self.errors.inc(n_errors)
        if n_retries:
            self.retries.inc(n_retries)
        self.latency.observe_many(
            np.fromiter((r.finish_time - r.submit_time for r in completed), np.float64, n)
        )
        ts = self.ts_latency
        if ts is not None:
            # completion order == per-event-loop order, so window
            # assignment (and hence the snapshot) stays bit-identical
            # between the drain path and the per-event path
            for r in completed:
                ts.observe(r.finish_time, r.finish_time - r.submit_time)
        group = self.group
        if group is not None:
            trace_complete = self.trace_complete
            for r in completed:
                trace_complete(group, r)


class _DiskServer:
    """One disk plus its queue and busy state."""

    __slots__ = ("model", "scheduler", "busy", "current")

    def __init__(self, model: DiskModel, scheduler: Scheduler) -> None:
        self.model = model
        self.scheduler = scheduler
        self.busy = False
        self.current: IORequest | None = None


class Simulation:
    """Event-driven simulation of an array of disks.

    Parameters
    ----------
    n_disks:
        Number of disks, ids ``0 .. n_disks - 1``.
    params:
        Disk parameters shared by all disks (homogeneous array, as in
        the paper's testbed).
    scheduler_factory:
        Zero-argument callable producing a fresh scheduler per disk;
        defaults to the elevator.
    calendar:
        ``"typed"`` (opcode calendar with the vectorized drain path,
        the default) or ``"heapq"`` (the legacy tuple calendar, kept
        for A/B ablation).  ``None`` defers to ``REPRO_CALENDAR``.
    """

    def __init__(
        self,
        n_disks: int,
        params: DiskParameters | None = None,
        scheduler_factory: Callable[[], Scheduler] = ElevatorScheduler,
        faults=None,
        tracer=None,
        calendar: str | None = None,
        recorder=None,
    ) -> None:
        if n_disks < 1:
            raise ValueError(f"need at least one disk, got {n_disks}")
        self.params = params if params is not None else DiskParameters.savvio_10k3()
        #: optional fault model: a
        #: :class:`repro.disksim.faults.LatentSectorErrors` or the
        #: richer :class:`repro.disksim.faultplan.ActiveFaults` (duck
        #: typed — ``on_completion`` is required, ``service_factor``
        #: consulted when present)
        self.faults = faults
        #: hoisted fail-slow hook — resolving the attribute once instead
        #: of a ``getattr`` per request start
        self._service_factor = getattr(faults, "service_factor", None)
        self.disks = [
            _DiskServer(DiskModel(d, self.params), scheduler_factory())
            for d in range(n_disks)
        ]
        self.now: float = 0.0
        kind = (
            calendar
            if calendar is not None
            else os.environ.get("REPRO_CALENDAR", "typed")
        )
        if kind not in ("typed", "heapq"):
            raise ValueError(
                f"unknown calendar kind {kind!r} (expected 'typed' or 'heapq')"
            )
        #: which calendar drives this simulation: ``"typed"`` or ``"heapq"``
        self.calendar_kind = kind
        self._cal: TypedCalendar | None = (
            TypedCalendar() if kind == "typed" else None
        )
        self._events: list[tuple[float, int, Callable[..., None], tuple]] = []
        self._seq = 0
        self.completed: list[IORequest] = []
        self._callbacks: dict[int, Callback] = {}
        #: observability hooks: a ``_SimObs`` when metrics/tracing are
        #: on, else ``None`` — the null-sink fast path.  ``tracer`` may
        #: be a :class:`~repro.obs.tracing.Tracer` or an
        #: already-labelled :class:`~repro.obs.tracing.TraceGroup`;
        #: with no explicit tracer the process default tracer applies,
        #: and ``tracer=False`` opts this simulation out of tracing
        #: even when a default tracer is installed.
        if tracer is False:
            trace = None
        elif tracer is not None:
            trace = tracer
        else:
            trace = default_tracer()
        #: flight recorder for simulated-time windowed timeseries.
        #: ``recorder=False`` opts out; with no explicit recorder the
        #: process default applies — which is ``None`` under
        #: ``REPRO_OBS=0``, so recording is skipped entirely.  The
        #: engine advances the recorder's windows once per ``run()``
        #: call (in the instrumented loops' finally blocks; the bare
        #: heapq loop never carries a recorder).
        if recorder is False:
            self.recorder = None
        elif recorder is not None:
            self.recorder = recorder
        else:
            self.recorder = default_recorder()
        self._obs = (
            _SimObs(self, trace) if (trace is not None or obs_enabled()) else None
        )

    # ------------------------------------------------------------------
    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Run ``action`` ``delay`` seconds from now."""
        self.schedule_call(delay, action)

    def schedule_call(self, delay: float, action: Callable[..., None], *args) -> None:
        """Run ``action(*args)`` ``delay`` seconds from now.

        Passing the arguments through the event instead of a closure
        keeps hot paths allocation-light.  On the typed calendar this
        is the fully general ``OP_CALL`` escape hatch (the callable
        lives in a side table); completions scheduled by the engine
        itself take the integer-payload fast path.
        """
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self._seq += 1
        cal = self._cal
        if cal is None:
            heapq.heappush(self._events, (self.now + delay, self._seq, action, args))
        else:
            cal.push_call(self.now + delay, self._seq, action, args)

    def submit(self, request: IORequest, callback: Callback | None = None) -> None:
        """Enqueue a request on its disk, starting service if idle."""
        if not 0 <= request.disk < len(self.disks):
            raise ValueError(f"request targets unknown disk {request.disk}")
        request.submit_time = self.now
        if callback is not None:
            self._callbacks[request.req_id] = callback
        server = self.disks[request.disk]
        server.scheduler.add(request)
        if not server.busy:
            self._start_next(server)

    def submit_many(self, requests, callback: Callback | None = None) -> None:
        """Enqueue a pre-built batch of requests in one engine call.

        Semantically identical to calling :meth:`submit` per request in
        order (idle disks start serving as soon as their first request
        lands, so scheduler decisions are unchanged); the batch form
        hoists the attribute lookups and bounds bookkeeping out of the
        per-request path, which is what the vectorized
        :meth:`~repro.disksim.array.ElementArray.submit_batch` wants.
        """
        disks = self.disks
        n = len(disks)
        callbacks = self._callbacks
        now = self.now
        for request in requests:
            d = request.disk
            if not 0 <= d < n:
                raise ValueError(f"request targets unknown disk {d}")
            request.submit_time = now
            if callback is not None:
                callbacks[request.req_id] = callback
            server = disks[d]
            server.scheduler.add(request)
            if not server.busy:
                self._start_next(server)

    def submit_at(self, time: float, request: IORequest, callback: Callback | None = None) -> None:
        """Submit a request at an absolute future simulation time."""
        if time < self.now:
            raise ValueError(f"cannot submit in the past ({time} < {self.now})")
        self.schedule_call(time - self.now, self.submit, request, callback)

    def submit_many_at(
        self, time: float, requests, callback: Callback | None = None
    ) -> None:
        """Submit a pre-built batch at an absolute future simulation time.

        The open-loop arrival primitive: the batch lands on the disks at
        its arrival instant regardless of what is still in flight — no
        completion backpressure — and drains through
        :meth:`submit_many`.  Arrival scheduling rides the calendar's
        ``OP_CALL`` path, so interleaved completions keep their
        deterministic (time, seq) order.
        """
        if time < self.now:
            raise ValueError(f"cannot submit in the past ({time} < {self.now})")
        self.schedule_call(time - self.now, self.submit_many, requests, callback)

    # ------------------------------------------------------------------
    def _start_next(self, server: _DiskServer) -> None:
        if server.busy or not server.scheduler:
            return
        request = server.scheduler.pop(server.model.head_position)
        duration = server.model.serve(request)
        if self._service_factor is not None:
            factor = self._service_factor(request.disk, self.now)
            if factor != 1.0:
                # fail-slow inflation counts as busy time too
                server.model.busy_time += duration * (factor - 1.0)
                duration *= factor
        request.start_time = self.now
        finish = self.now + duration
        request.finish_time = finish
        server.busy = True
        server.current = request
        self._seq += 1
        cal = self._cal
        if cal is None:
            heapq.heappush(
                self._events, (finish, self._seq, self._complete, (server, request))
            )
        else:
            cal.push(finish, self._seq, OP_COMPLETE, request.disk)

    def _complete(self, server: _DiskServer, request: IORequest) -> None:
        server.busy = False
        server.current = None
        if self.faults is not None:
            self.faults.on_completion(request)
        self.completed.append(request)
        if self._obs is not None:
            self._obs.on_complete(request, server)
        cb = self._callbacks.pop(request.req_id, None)
        if cb is not None:
            cb(request)
        self._start_next(server)

    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Process events until quiescence (or ``until``); returns the clock.

        The clock is monotone: ``until`` earlier than ``now`` is a no-op
        (time never moves backwards), and an idle engine still advances
        to ``until`` — ``run(until=t)`` on an empty calendar models
        waiting out wall-clock time with no I/O in flight.
        """
        if self._cal is not None:
            return self._run_typed(until)
        # the legacy heapq dispatch loop exists twice: the bare body
        # below, and an instrumented twin that additionally counts
        # popped events.  Folding the counter into one shared loop
        # costs ~5% even with observability off (a per-event increment
        # plus the try/finally needed to flush it), which would break
        # the null-sink ≤2% contract gated by ``perfbench
        # --obs-overhead``.
        if self._obs is not None:
            return self._run_instrumented(until)
        events = self._events
        if until is not None and until <= self.now:
            return self.now
        while events:
            t = events[0][0]
            if until is not None and t > until:
                self.now = until
                return self.now
            _, _, action, args = heapq.heappop(events)
            self.now = t
            action(*args)
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def _run_instrumented(self, until: float | None = None) -> float:
        """:meth:`run`'s legacy-calendar twin with the dispatch counter."""
        events = self._events
        if until is not None and until <= self.now:
            return self.now
        dispatched = 0
        try:
            while events:
                t = events[0][0]
                if until is not None and t > until:
                    self.now = until
                    return self.now
                _, _, action, args = heapq.heappop(events)
                self.now = t
                dispatched += 1
                action(*args)
            if until is not None and until > self.now:
                self.now = until
            return self.now
        finally:
            # one counter update per run() call, not per event
            if dispatched:
                self._obs.dispatched.inc(dispatched)
            rec = self.recorder
            if rec is not None:
                rec.advance_to(self.now)

    def _run_typed(self, until: float | None = None) -> float:
        """The typed-calendar run loop: batch pops, opcode dispatch.

        Whenever the pending set is completions-only with no callbacks
        outstanding and no fault hooks installed (checked per batch —
        a deferred ``OP_CALL`` firing can make the rest of the run
        eligible), the loop hands the whole remainder to
        :meth:`_drain_fast` instead of popping events one at a time.
        """
        if until is not None and until <= self.now:
            return self.now
        cal = self._cal
        obs = self._obs
        disks = self.disks
        take_call = cal.take_call
        pop_batch = cal.pop_batch
        heap = cal._heap
        dispatched = 0
        try:
            while heap:
                if (
                    until is None
                    and cal._n_call == 0
                    and self.faults is None
                    and not self._callbacks
                ):
                    dispatched += self._drain_fast()
                    break
                t = heap[0][0]
                if until is not None and t > until:
                    self.now = until
                    return self.now
                self.now = t
                for _t, seq, opcode, arg0 in pop_batch():
                    dispatched += 1
                    if opcode == OP_COMPLETE:
                        server = disks[arg0]
                        self._complete(server, server.current)
                    else:
                        action, args = take_call(seq)
                        action(*args)
            if until is not None and until > self.now:
                self.now = until
            return self.now
        finally:
            # one counter update per run() call, not per event —
            # shared by both the batch loop and the vectorized drain
            if dispatched and obs is not None:
                obs.dispatched.inc(dispatched)
            rec = self.recorder
            if rec is not None:
                rec.advance_to(self.now)

    # ------------------------------------------------------------------
    def _drain_fast(self) -> int:
        """Run every pending completion to quiescence, vectorized.

        Preconditions (checked by :meth:`_run_typed`): the calendar
        holds only ``OP_COMPLETE`` events, no completion callbacks are
        registered, and no fault model is installed.  Under those
        conditions the disks are mutually independent — nothing a
        completion does can affect another disk — so each disk's
        remaining timeline is one scheduler :meth:`~repro.disksim.
        scheduler.Scheduler.drain` plus a vectorized service-time
        computation, and the global completion order is a merge of the
        per-disk streams.  Every float is produced by the same
        sequence of IEEE operations the per-event loop performs, so
        clocks, busy times and request timestamps are bit-identical.

        Returns the number of events the per-event loop would have
        popped (for the dispatch counter).
        """
        cal = self._cal
        times, seqs, disk_ids = cal.drain_completions()
        disks = self.disks
        n_streams = len(times)
        stream_f: list[np.ndarray] = []   # finish times, in-flight head first
        stream_reqs: list[list[IORequest]] = []
        total = 0
        n_writes = 0
        bytes_written = 0
        bytes_total = 0
        for si in range(n_streams):
            server = disks[int(disk_ids[si])]
            current = server.current
            # the in-flight head is part of the drained batch too
            if current.kind is IOKind.WRITE:
                n_writes += 1
                bytes_written += current.size
            bytes_total += current.size
            t0 = float(times[si])
            queue = server.scheduler
            if queue:
                model = server.model
                reqs = queue.drain(model.head_position)
                durations, nw, bw, bt = self._vector_service(model, reqs)
                n_writes += nw
                bytes_written += bw
                bytes_total += bt
                k = len(reqs)
                f = np.empty(k + 1, dtype=np.float64)
                f[0] = t0
                f[1:] = durations
                np.cumsum(f, out=f)  # accumulate preserves serve order
                flist = f.tolist()
                prev = t0
                for r, ft in zip(reqs, flist[1:]):
                    r.start_time = prev
                    r.finish_time = ft
                    prev = ft
                stream = [current]
                stream.extend(reqs)
                stream_reqs.append(stream)
                total += 1 + k
            else:
                f = times[si : si + 1]
                stream_reqs.append([current])
                total += 1
            stream_f.append(f)
            server.busy = False
            server.current = None
        if not total:
            return 0
        # global completion order: merge the per-disk streams the way
        # the calendar would have popped them
        if n_streams == 1:
            ordered = stream_reqs[0]
            self.now = float(stream_f[0][-1])
            self._seq += total - 1
        else:
            all_f = np.concatenate(stream_f)
            srt = np.sort(all_f)
            self.now = float(srt[-1])
            if (srt[1:] == srt[:-1]).any():
                # equal finish times across disks: replay the heap's
                # dynamic tie-breaking (each pop schedules the popped
                # disk's next completion with the next global seq)
                ordered = self._merge_streams(stream_f, stream_reqs, seqs)
            else:
                flat = np.empty(total, dtype=object)
                pos = 0
                for sr in stream_reqs:
                    flat[pos : pos + len(sr)] = sr
                    pos += len(sr)
                ordered = flat[np.argsort(all_f)].tolist()
                self._seq += total - n_streams
        self.completed.extend(ordered)
        obs = self._obs
        if obs is not None:
            for si in range(n_streams):
                obs.qd[int(disk_ids[si])].set(0)
            obs.on_drain(ordered, n_writes, bytes_written, bytes_total)
        return total

    def _merge_streams(
        self,
        stream_f: list[np.ndarray],
        stream_reqs: list[list[IORequest]],
        seqs: np.ndarray,
    ) -> list[IORequest]:
        """Merge per-disk completion streams by ``(time, seq)``.

        The in-flight heads carry the seqs their events were scheduled
        with; every subsequent completion takes the next global seq at
        the moment its predecessor pops — exactly the per-event loop's
        assignment order, so ties resolve identically.
        """
        flists = [f.tolist() for f in stream_f]
        heap = [
            (flists[si][0], int(seqs[si]), si, 0) for si in range(len(flists))
        ]
        heapq.heapify(heap)
        seq = self._seq
        ordered: list[IORequest] = []
        while heap:
            t, s, si, i = heapq.heappop(heap)
            ordered.append(stream_reqs[si][i])
            ni = i + 1
            fl = flists[si]
            if ni < len(fl):
                seq += 1
                heapq.heappush(heap, (fl[ni], seq, si, ni))
        self._seq = seq
        return ordered

    def _vector_service(
        self, model: DiskModel, reqs: list[IORequest]
    ) -> tuple[np.ndarray, int, int, int]:
        """Service times for ``reqs`` served back to back, vectorized.

        Replicates :meth:`~repro.disksim.disk.DiskModel.service_time`
        and :meth:`~repro.disksim.disk.DiskModel.serve` elementwise —
        same expression grouping, so every duration is the bit-exact
        float the scalar path computes — and leaves the model's head,
        sequential-run and byte counters in the post-serve state.
        ``model.busy_time`` accumulates in serve order.

        Returns ``(durations, n_writes, bytes_written, bytes_total)``
        so the caller can aggregate observability counters without a
        second pass over the requests.
        """
        k = len(reqs)
        p = model.params
        off = np.fromiter((r.offset for r in reqs), np.int64, k)
        size = np.fromiter((r.size for r in reqs), np.int64, k)
        end = off + size
        if int(end.max()) > p.capacity_bytes:
            bad = reqs[int(np.argmax(end > p.capacity_bytes))]
            raise ValueError(
                f"request [{bad.offset}, {bad.end}) beyond disk capacity "
                f"{p.capacity_bytes}"
            )
        is_write = np.fromiter((r.kind is IOKind.WRITE for r in reqs), np.bool_, k)
        # the head and last-transfer state chain through the batch: the
        # disk is busy, so its model already reflects the in-flight
        # request (head == last_end == its end)
        prev_end = np.empty(k, dtype=np.int64)
        prev_end[0] = model._last_end
        prev_end[1:] = end[:-1]
        prev_write = np.empty(k, dtype=np.bool_)
        prev_write[0] = model._last_kind is IOKind.WRITE
        prev_write[1:] = is_write[:-1]
        sequential = (off == prev_end) & (is_write == prev_write)
        transfer = np.where(
            is_write,
            size / (p.seq_write_mbps * _MB),
            size / (p.seq_read_mbps * _MB),
        )
        dist = np.abs(off - prev_end)
        frac = np.minimum(1.0, dist / p.capacity_bytes)
        t2t = p.track_to_track_seek_ms / 1e3
        full = p.full_stroke_seek_ms / 1e3
        seek = np.where(dist <= 0, 0.0, t2t + (full - t2t) * np.sqrt(frac))
        overhead = np.where(
            is_write,
            p.scattered_write_overhead_ms / 1e3,
            p.scattered_read_overhead_ms / 1e3,
        )
        scattered = ((seek + p.avg_rotational_latency_s) + transfer) + overhead
        durations = np.where(sequential, transfer, scattered)
        # post-serve model state
        n_seq = int(np.count_nonzero(sequential))
        model.n_sequential += n_seq
        model.n_scattered += k - n_seq
        n_writes = int(np.count_nonzero(is_write))
        bytes_written = int(size[is_write].sum()) if n_writes else 0
        bytes_total = int(size.sum())
        model.bytes_written += bytes_written
        model.bytes_read += bytes_total - bytes_written
        busy = np.empty(k + 1, dtype=np.float64)
        busy[0] = model.busy_time
        busy[1:] = durations
        np.cumsum(busy, out=busy)
        model.busy_time = float(busy[-1])
        last_end = int(end[-1])
        model._head = last_end
        model._last_end = last_end
        model._last_kind = reqs[-1].kind
        return durations, n_writes, bytes_written, bytes_total

    def max_finish_time_since(self, index: int, default: float = 0.0) -> float:
        """Latest completion time among ``completed[index:]`` — O(1).

        ``completed`` is append-only in event-pop order and the clock
        is monotone, so finish times are non-decreasing along the log:
        the tail's maximum is simply its last entry.  The rebuild loop
        asks this after every pass; the old linear re-scan of the tail
        made that aggregation quadratic in the number of requests.
        """
        completed = self.completed
        if len(completed) > index:
            latest = completed[-1].finish_time
            if latest > default:
                return latest
        return default

    def drain(self) -> float:
        """Alias of :meth:`run` to quiescence."""
        return self.run()

    # ------------------------------------------------------------------
    @property
    def n_disks(self) -> int:
        return len(self.disks)

    def disk(self, disk_id: int) -> DiskModel:
        return self.disks[disk_id].model

    @property
    def total_bytes_read(self) -> int:
        return sum(s.model.bytes_read for s in self.disks)

    @property
    def total_bytes_written(self) -> int:
        return sum(s.model.bytes_written for s in self.disks)

    def pending_count(self) -> int:
        in_service = sum(1 for s in self.disks if s.busy)
        return in_service + sum(len(s.scheduler) for s in self.disks)
