#!/usr/bin/env python
"""Perf-regression harness: time the simulator's hot kernels.

Unlike the ``bench_*`` pytest-benchmark files (which regenerate paper
artifacts), this is a plain script that times the *engine itself* and
appends a run record to a trajectory file, so speedups and regressions
are visible across commits::

    PYTHONPATH=src python benchmarks/perfbench.py               # full scale
    PYTHONPATH=src python benchmarks/perfbench.py --tiny        # CI smoke
    PYTHONPATH=src python benchmarks/perfbench.py --out my.json --no-append

Kernels:

* ``rebuild_cached``      — 1024-stripe single-failure rebuild, plan cache on
* ``rebuild_nocache``     — same rebuild with ``plan_cache=False`` (ablation)
* ``engine_elevator``     — raw event-engine throughput, elevator scheduling
* ``batch_submission``    — vectorized ``submit_batch`` over bulk numpy ops
* ``plan_generation``     — reconstruction plans for every 2-failure set
* ``campaign_serial``     — 16-seed compare_sweep, ``jobs=1``
* ``campaign_parallel``   — the same sweep fanned over every core
* ``campaign_pooled``     — the same sweep on a persistent ``WorkerPool``
                            with a shared-memory film block

Derived ratios land in the record too: ``plan_cache_speedup``
(nocache / cached), ``parallel_speedup`` (serial / parallel) and
``pool_speedup`` (per-call pool / persistent pool).
Gate a run against a baseline with ``tools/bench_compare.py``.

``--no-batch`` disables the vectorized batch path for the whole run
(the per-element ablation); CI times both and gates the batch path
against the per-element record so it can never silently regress.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.layouts import shifted_mirror_parity  # noqa: E402
from repro.disksim.array import ElementArray  # noqa: E402
from repro.disksim.disk import DiskParameters  # noqa: E402
from repro.disksim.request import IOKind  # noqa: E402
from repro.disksim.scheduler import ElevatorScheduler  # noqa: E402
from repro.raidsim.campaign import compare_sweep  # noqa: E402
from repro.raidsim.controller import RaidController  # noqa: E402

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_simperf.json"


# ----------------------------------------------------------------------
# kernels — each returns elapsed seconds for one execution
# ----------------------------------------------------------------------

def _time(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def kernel_rebuild(n_stripes: int, plan_cache: bool) -> float:
    """Single-threaded rebuild; controller construction excluded."""
    ctrl = RaidController(
        shifted_mirror_parity(5),
        n_stripes=n_stripes,
        payload_bytes=8,
        plan_cache=plan_cache,
    )
    return _time(lambda: ctrl.rebuild((0,), verify=False))


def kernel_engine(n_requests: int) -> float:
    """Raw submit/run throughput through the elevator scheduler."""
    import numpy as np

    arr = ElementArray(
        8, 4 * 1024 * 1024, DiskParameters.savvio_10k3(), ElevatorScheduler
    )
    rng = np.random.default_rng(0)
    disks = rng.integers(0, 8, size=n_requests)
    offsets = rng.integers(0, 512, size=n_requests)

    def drive() -> None:
        for d, off in zip(disks, offsets):
            arr.submit(arr.element_request(int(d), int(off), IOKind.READ))
        arr.run()

    return _time(drive)


def kernel_batch(n_ops: int) -> float:
    """Bulk batch submission straight from numpy arrays."""
    import numpy as np

    arr = ElementArray(
        8, 4 * 1024 * 1024, DiskParameters.savvio_10k3(), ElevatorScheduler
    )
    rng = np.random.default_rng(0)
    disks = rng.integers(0, 8, size=n_ops)
    slots = rng.integers(0, 512, size=n_ops)

    def drive() -> None:
        arr.submit_batch(disks, slots, IOKind.READ)
        arr.run()

    return _time(drive)


def kernel_plans() -> float:
    layout = shifted_mirror_parity(7)

    def plans() -> None:
        for failed in layout.all_failure_sets(2):
            layout.reconstruction_plan(failed)

    return _time(plans)


def kernel_campaign(n_seeds: int, n_stripes: int, jobs: int | None) -> float:
    return _time(
        lambda: compare_sweep(
            "mirror", 4, n_seeds=n_seeds, n_stripes=n_stripes, jobs=jobs
        )
    )


def kernel_campaign_pooled(n_seeds: int, n_stripes: int) -> float:
    """The sweep on a persistent pool with a shared-memory film block.

    Pool spin-up and film materialisation are inside the timing — the
    point is that they are paid once per pool, not once per sweep.
    """
    from repro.parallel import WorkerPool

    def drive() -> None:
        with WorkerPool(jobs=0) as pool:
            if pool.n_workers > 1:
                pool.share_film(2012, 16, n_stripes, 4, 4)  # mirror(4) geometry
            compare_sweep(
                "mirror", 4, n_seeds=n_seeds, n_stripes=n_stripes, pool=pool
            )

    return _time(drive)


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------

def run_suite(tiny: bool, repeats: int) -> dict:
    """Best-of-``repeats`` seconds per kernel, plus derived ratios."""
    scale = {
        "rebuild_stripes": 64 if tiny else 1024,
        "engine_requests": 2000 if tiny else 20000,
        "sweep_seeds": 4 if tiny else 16,
        "sweep_stripes": 4 if tiny else 12,
    }

    def best(fn) -> float:
        return min(fn() for _ in range(repeats))

    kernels: dict[str, float] = {}
    print(f"perfbench ({'tiny' if tiny else 'full'} scale, best of {repeats})")
    kernels["rebuild_cached"] = best(
        lambda: kernel_rebuild(scale["rebuild_stripes"], plan_cache=True)
    )
    print(f"  rebuild_cached    {kernels['rebuild_cached']:.3f} s")
    kernels["rebuild_nocache"] = best(
        lambda: kernel_rebuild(scale["rebuild_stripes"], plan_cache=False)
    )
    print(f"  rebuild_nocache   {kernels['rebuild_nocache']:.3f} s")
    kernels["engine_elevator"] = best(
        lambda: kernel_engine(scale["engine_requests"])
    )
    print(f"  engine_elevator   {kernels['engine_elevator']:.3f} s")
    kernels["batch_submission"] = best(
        lambda: kernel_batch(scale["engine_requests"])
    )
    print(f"  batch_submission  {kernels['batch_submission']:.3f} s")
    kernels["plan_generation"] = best(kernel_plans)
    print(f"  plan_generation   {kernels['plan_generation']:.3f} s")
    # the sweep kernels run once each: the pool spin-up is part of the cost
    kernels["campaign_serial"] = kernel_campaign(
        scale["sweep_seeds"], scale["sweep_stripes"], jobs=1
    )
    print(f"  campaign_serial   {kernels['campaign_serial']:.3f} s")
    kernels["campaign_parallel"] = kernel_campaign(
        scale["sweep_seeds"], scale["sweep_stripes"], jobs=0
    )
    print(f"  campaign_parallel {kernels['campaign_parallel']:.3f} s")
    kernels["campaign_pooled"] = kernel_campaign_pooled(
        scale["sweep_seeds"], scale["sweep_stripes"]
    )
    print(f"  campaign_pooled   {kernels['campaign_pooled']:.3f} s")

    derived = {
        "plan_cache_speedup": kernels["rebuild_nocache"]
        / max(kernels["rebuild_cached"], 1e-9),
        "parallel_speedup": kernels["campaign_serial"]
        / max(kernels["campaign_parallel"], 1e-9),
        "pool_speedup": kernels["campaign_parallel"]
        / max(kernels["campaign_pooled"], 1e-9),
    }
    print(f"  plan-cache speedup {derived['plan_cache_speedup']:.2f}x, "
          f"parallel speedup {derived['parallel_speedup']:.2f}x, "
          f"pool speedup {derived['pool_speedup']:.2f}x "
          f"({os.cpu_count()} cores)")
    from repro.disksim.array import batch_enabled

    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "scale": "tiny" if tiny else "full",
        "repeats": repeats,
        "batch_path": batch_enabled(),
        "kernels": kernels,
        "derived": derived,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true",
                        help="small sizes for CI smoke runs")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing for the serial kernels")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"trajectory file (default {DEFAULT_OUT.name})")
    parser.add_argument("--no-append", action="store_true",
                        help="overwrite the trajectory instead of appending")
    parser.add_argument("--no-batch", action="store_true",
                        help="disable the vectorized batch path for the "
                             "whole run (per-element ablation)")
    args = parser.parse_args(argv)

    if args.no_batch:
        from repro.disksim.array import set_batch_enabled

        os.environ["REPRO_BATCH"] = "0"  # pool workers inherit the toggle
        set_batch_enabled(False)
    record = run_suite(tiny=args.tiny, repeats=args.repeats)
    runs = []
    if not args.no_append and args.out.exists():
        try:
            runs = json.loads(args.out.read_text()).get("runs", [])
        except (json.JSONDecodeError, AttributeError):
            print(f"warning: {args.out} unreadable, starting fresh",
                  file=sys.stderr)
    runs.append(record)
    args.out.write_text(json.dumps({"runs": runs}, indent=2) + "\n")
    print(f"appended run #{len(runs)} to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
