"""Prometheus exposition edge cases and ephemeral-port serving.

Regression coverage for two live-endpoint hazards: non-finite sample
values must render as the case-sensitive exposition tokens (``NaN`` /
``+Inf`` / ``-Inf`` — Python's ``repr`` spellings are rejected by
Prometheus parsers), and two servers on ``port=0`` must coexist in one
process, each readable back through ``.port`` / ``.url``.
"""

from __future__ import annotations

import urllib.request

from repro.obs import MetricsRegistry, MetricsServer, prometheus_text


def test_non_finite_values_use_exposition_tokens():
    """Regression: a zero-sample NaN gauge used to render as Python's
    ``nan``, which a Prometheus scraper rejects, poisoning the whole
    exposition."""
    reg = MetricsRegistry()
    reg.gauge("serve.p99_s").set(float("nan"), agg="p99")
    reg.gauge("ratio.best").set(float("inf"))
    reg.gauge("ratio.worst").set(float("-inf"))
    text = prometheus_text(reg.snapshot())
    assert 'serve_p99_s{agg="p99"} NaN' in text
    assert "ratio_best +Inf" in text
    assert "ratio_worst -Inf" in text
    for bad_token in (" nan", " inf", " -inf", " Infinity"):
        assert bad_token not in text


def test_histogram_sum_of_inf_observations_renders_tokenized():
    reg = MetricsRegistry()
    h = reg.histogram("lat", buckets=(1.0,))
    h.observe(float("inf"))
    text = prometheus_text(reg.snapshot())
    assert "lat_sum +Inf" in text
    assert 'lat_bucket{le="+Inf"} 1' in text


def test_two_ephemeral_port_servers_coexist():
    reg_a, reg_b = MetricsRegistry(), MetricsRegistry()
    reg_a.counter("who").inc(1, name="a")
    reg_b.counter("who").inc(1, name="b")
    with MetricsServer(port=0, registry_provider=lambda: reg_a) as a:
        with MetricsServer(port=0, registry_provider=lambda: reg_b) as b:
            assert a.port != b.port and a.port > 0 and b.port > 0
            body_a = urllib.request.urlopen(
                f"{a.url}/metrics", timeout=5
            ).read().decode()
            body_b = urllib.request.urlopen(
                f"{b.url}/metrics", timeout=5
            ).read().decode()
    assert 'who{name="a"}' in body_a and 'who{name="b"}' not in body_a
    assert 'who{name="b"}' in body_b and 'who{name="a"}' not in body_b


def test_url_is_both_property_and_callable():
    with MetricsServer(port=0) as srv:
        assert srv.url == f"http://127.0.0.1:{srv.port}"
        assert srv.url() == srv.url  # callable spelling, same string
        assert isinstance(srv.url(), str)
