"""ElementArray: element addressing, coalescing, rounds, group callbacks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.disksim.array import (
    DEFAULT_ELEMENT_SIZE,
    BatchSubmission,
    ElementArray,
    batch_enabled,
    set_batch_enabled,
)
from repro.disksim.disk import DiskParameters
from repro.disksim.request import IOKind

_MB = 1024 * 1024


def _ideal(n=3, element=4 * _MB):
    return ElementArray(n, element, DiskParameters.ideal())


def test_default_element_size_is_4mb():
    assert DEFAULT_ELEMENT_SIZE == 4 * _MB


def test_invalid_element_size_rejected():
    with pytest.raises(ValueError):
        ElementArray(2, 0)


def test_element_request_addressing():
    arr = _ideal()
    r = arr.element_request(1, 3, IOKind.READ, n_elements=2)
    assert r.offset == 3 * 4 * _MB
    assert r.size == 8 * _MB
    with pytest.raises(ValueError):
        arr.element_request(0, -1, IOKind.READ)


def test_submit_elements_coalesces_contiguous_runs():
    arr = _ideal(1)
    reqs = arr.submit_elements(
        [(0, 0), (0, 1), (0, 2), (0, 5), (0, 7), (0, 8)], IOKind.READ
    )
    spans = sorted((r.offset // (4 * _MB), r.size // (4 * _MB)) for r in reqs)
    assert spans == [(0, 3), (5, 1), (7, 2)]


def test_submit_elements_dedups_slots():
    arr = _ideal(1)
    reqs = arr.submit_elements([(0, 2), (0, 2), (0, 2)], IOKind.READ)
    assert len(reqs) == 1
    assert reqs[0].size == 4 * _MB


def test_batch_contract_exposes_op_to_request_mapping():
    """Dedup is part of coalescing: the return value is the authoritative
    batch, and every submitted op maps back to its covering request."""
    arr = _ideal(2)
    ops = [(0, 0), (1, 5), (0, 1), (0, 0)]
    reqs = arr.submit_elements(ops, IOKind.READ)
    assert isinstance(reqs, BatchSubmission)
    assert len(reqs) == 2  # (0, 0..1) coalesced + (1, 5)
    per_op = reqs.op_requests()
    assert len(per_op) == len(ops)
    assert per_op[0] is per_op[2] is per_op[3]  # all covered by (0, 0..1)
    assert per_op[0].disk == 0 and per_op[0].size == 8 * _MB
    assert per_op[1].disk == 1 and per_op[1].offset == 5 * 4 * _MB


def test_callback_fires_per_coalesced_request_not_per_op():
    """The documented miscount: 3 ops over 2 requests fire 2 callbacks."""
    arr = _ideal(1)
    fired = []
    ops = [(0, 2), (0, 2), (0, 7)]
    reqs = arr.submit_elements(ops, IOKind.READ, callback=fired.append)
    arr.run()
    assert len(reqs) == 2
    assert len(fired) == 2  # never len(ops)


def test_submit_batch_accepts_numpy_arrays_and_sizes():
    arr = _ideal(2)
    reqs = arr.submit_batch(
        np.array([0, 0, 1]),
        np.array([0, 2, 4]),
        IOKind.READ,
        n_elements=np.array([3, 2, 1]),  # [0,3) and [2,4) overlap-merge
    )
    spans = sorted((r.disk, r.offset // (4 * _MB), r.size // (4 * _MB)) for r in reqs)
    assert spans == [(0, 0, 4), (1, 4, 1)]


def test_submit_batch_rejects_mismatched_arrays():
    arr = _ideal(1)
    with pytest.raises(ValueError, match="parallel"):
        arr.submit_batch([0, 0], [1], IOKind.READ)
    with pytest.raises(ValueError, match="range"):
        arr.submit_batch([0], [-1], IOKind.READ)


def test_numpy_and_scalar_coalescers_agree_on_random_batches():
    """The vectorized path must be a pure speedup: identical runs and
    identical op→request mapping as the scalar loop, duplicates and
    variable sizes included."""
    arr = _ideal(4)
    rng = np.random.default_rng(7)
    for _ in range(5):
        m = int(rng.integers(60, 140))
        disks = rng.integers(0, 4, m).tolist()
        slots = rng.integers(0, 30, m).tolist()
        sizes = rng.integers(1, 4, m).tolist()
        for n_elements in (None, sizes):
            scalar = arr._coalesce_scalar(disks, slots, n_elements)
            vector = arr._coalesce_numpy(disks, slots, n_elements)
            assert [tuple(r) for r in vector[0]] == [tuple(r) for r in scalar[0]]
            assert list(vector[1]) == list(scalar[1])


def test_batch_toggle_preserves_requests_and_timings():
    """REPRO_BATCH=0 ablation: the per-element path and the batch path
    produce byte-identical request streams and completion times."""
    rng = np.random.default_rng(11)
    ops = [
        (int(d), int(s))
        for d, s in zip(rng.integers(0, 3, 80), rng.integers(0, 25, 80))
    ]

    def run(enabled):
        old = set_batch_enabled(enabled)
        try:
            arr = _ideal(3)
            reqs = arr.submit_elements(ops, IOKind.READ)
            arr.run()
            return [
                (r.disk, r.offset, r.size, r.start_time, r.finish_time) for r in reqs
            ]
        finally:
            set_batch_enabled(old)

    assert run(True) == run(False)
    assert batch_enabled() in (True, False)  # toggle restored


def test_empty_submission_has_empty_mapping():
    arr = _ideal(1)
    reqs = arr.submit_elements([], IOKind.READ)
    assert list(reqs) == []
    assert reqs.op_requests() == []


def test_group_callback_fires_after_all():
    arr = _ideal(2)
    done = []
    arr.submit_elements(
        [(0, 0), (1, 0), (0, 5)], IOKind.READ, on_complete=lambda: done.append(arr.now)
    )
    arr.run()
    assert len(done) == 1
    assert done[0] == pytest.approx(arr.now)


def test_group_callback_on_empty_batch_fires_immediately():
    arr = _ideal(1)
    done = []
    arr.submit_elements([], IOKind.READ, on_complete=lambda: done.append(True))
    assert done == [True]


def test_per_request_and_group_callbacks_compose():
    arr = _ideal(1)
    per, group = [], []
    arr.submit_elements(
        [(0, 0), (0, 2)],
        IOKind.READ,
        callback=lambda r: per.append(r.offset),
        on_complete=lambda: group.append(True),
    )
    arr.run()
    assert len(per) == 2
    assert group == [True]


def test_run_rounds_barrier_semantics():
    """Each round completes before the next starts: with ideal disks,
    k rounds of one element each cost exactly k transfer times."""
    arr = _ideal(3)
    rounds = [[(0, 0), (1, 0), (2, 0)], [(0, 1), (1, 1), (2, 1)]]
    elapsed = arr.run_rounds(rounds, IOKind.READ)
    transfer = 4 * _MB / (54.8 * _MB)
    rotation = DiskParameters.ideal().avg_rotational_latency_s  # first access only
    assert elapsed == pytest.approx(2 * transfer + rotation, rel=0.01)


def test_stats_and_tag_filtering():
    arr = _ideal(2)
    arr.submit_elements([(0, 0)], IOKind.READ, tag="a")
    arr.submit_elements([(1, 0)], IOKind.WRITE, tag="b")
    arr.run()
    all_stats = arr.stats()
    assert all_stats.n_reads == 1 and all_stats.n_writes == 1
    only_a = arr.stats(tag="a")
    assert only_a.n_reads == 1 and only_a.n_writes == 0


def test_park_heads_resets_stream_state():
    params = DiskParameters.savvio_10k3()
    arr = ElementArray(1, 4 * _MB, params)
    arr.submit_elements([(0, 0)], IOKind.READ)
    arr.run()
    arr.park_heads()
    assert arr.sim.disk(0).head_position == 0


def test_for_paper_testbed_uses_savvio():
    arr = ElementArray.for_paper_testbed(4)
    assert arr.sim.disk(0).params.seq_read_mbps == pytest.approx(54.8)
    assert arr.n_disks == 4
