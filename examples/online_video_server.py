#!/usr/bin/env python3
"""Scenario: a video server losing a disk during the evening rush.

The paper's introduction motivates on-line reconstruction: the system
keeps answering user reads while a failed disk rebuilds, and reads that
hit the failed disk must be recovered on the fly with priority (§III).
This example models a media server streaming a large film library
(4 MB elements — the paper's element size, typical for video chunks):

* a disk holding part of the library fails;
* viewers keep requesting chunks that lived on that disk;
* we measure what viewers experience under the traditional versus the
  shifted mirror arrangement, with and without the parity disk.

Run::

    python examples/online_video_server.py
"""

from __future__ import annotations

from repro.core import (
    shifted_mirror,
    shifted_mirror_parity,
    traditional_mirror,
    traditional_mirror_parity,
)
from repro.disksim import PriorityScheduler
from repro.raidsim import OnlineReconstruction, RaidController
from repro.workloads import user_read_stream

N = 5
N_STRIPES = 24
VIEWER_RATE = 12  # chunk requests per second aimed at the failed disk
RUSH_SECONDS = 2.5


def serve_through_failure(build, label: str) -> None:
    controller = RaidController(
        build(N),
        n_stripes=N_STRIPES,
        payload_bytes=16,
        scheduler_factory=PriorityScheduler,  # user reads preempt rebuild I/O
    )
    viewers = user_read_stream(
        N, N_STRIPES, duration_s=RUSH_SECONDS, rate_per_s=VIEWER_RATE, target_disk=0
    )
    result = OnlineReconstruction(controller, [0], viewers).run()
    assert result.rebuild.verified
    print(
        f"  {label:<28} viewer latency mean {result.mean_user_latency_s * 1e3:7.0f} ms, "
        f"p95 {result.p95_user_latency_s * 1e3:7.0f} ms   "
        f"(rebuild {result.rebuild.makespan_s:5.1f} s, "
        f"{result.degraded_reads} degraded reads)"
    )


def main() -> None:
    print(f"Video server, n={N} data disks, disk 0 fails mid-stream;")
    print(f"viewers request {VIEWER_RATE} chunks/s from the failed disk.\n")

    print("Single-fault architectures (mirror method):")
    serve_through_failure(traditional_mirror, "traditional mirror")
    serve_through_failure(shifted_mirror, "shifted mirror")

    print("\nDouble-fault architectures (mirror method with parity):")
    serve_through_failure(traditional_mirror_parity, "traditional mirror+parity")
    serve_through_failure(shifted_mirror_parity, "shifted mirror+parity")

    print(
        "\nUnder the traditional arrangement every degraded read queues behind\n"
        "the rebuild stream on the single replica disk; the shifted arrangement\n"
        "spreads both loads across the whole array — the paper's §III story."
    )


if __name__ == "__main__":
    main()
