#!/usr/bin/env python3
"""A week under the nemesis: continuous stochastic faults, attributed.

``fault_campaign.py`` runs one *fixed* storm; this walkthrough lets a
seeded nemesis daemon improvise an open-ended one.  Over a simulated
week, four hazard classes arrive as independent Poisson streams —

1. whole-disk deaths (capped by a safety budget the mirror tolerates);
2. fail-slow windows (one drive serving everything 2-8x slower);
3. transient-error bursts (array-wide retry storms);
4. latent-sector-error storms;

— and every activation is recorded on an active-fault timeline.  Both
arrangements face the *identical* schedule, tick by tick; an anomaly
detector keeps quiet-period baselines of latency, throughput and
rebuild progress, flags excursions, and attributes each one to the
faults active at that instant.  The campaign's closing claim is the
nemesis invariant: **every excursion overlaps an active fault** — an
unexplained excursion would mean the engine misbehaved on its own.

Run::

    python examples/nemesis_campaign.py [days]
"""

from __future__ import annotations

import sys

from repro.nemesis import (
    FAULT_KINDS,
    FaultTimeline,
    HazardRates,
    NemesisConfig,
    run_nemesis_campaign,
)


def main(days: float = 7.0) -> int:
    # 1. one config — the entire campaign is a pure function of it
    config = NemesisConfig(
        family="mirror",
        n=4,
        horizon_s=days * 86_400.0,
        tick_s=3600.0,
        seed=2012,
        rates=HazardRates(
            disk_death_per_day=0.5,
            fail_slow_per_day=1.0,
            transient_burst_per_day=2.0,
            lse_storm_per_day=1.0,
        ),
        safety_budget=1,
    )
    print(f"nemesis campaign: {days:g} simulated day(s), "
          f"{config.n_ticks} hourly ticks, seed {config.seed}")

    # 2. run both arrangements through the identical stochastic schedule
    report = run_nemesis_campaign(config)
    sched = report.schedule
    print(f"the daemon drew {len(sched)} faults: "
          + ", ".join(f"{len(sched.of_kind(k))} {k}" for k in FAULT_KINDS)
          + f" ({sched.dropped_deaths} death(s) dropped by the safety budget)")

    # 3. what the storm did, per arrangement
    for run in (report.traditional, report.shifted):
        a = run.attribution
        print(f"\n{run.layout_name}")
        print(f"  availability {run.availability:.4f}, mean latency "
              f"{run.mean_latency_s * 1e3:.1f} ms, "
              f"{run.rebuild_ticks} rebuild tick(s)")
        print(f"  {a.n_excursions} excursion(s), "
              f"{a.attribution_coverage:.0%} attributed to active faults")

    # 4. the timeline the detector attributed against (first few entries)
    timeline = FaultTimeline.from_schedule(sched)
    print("\nactive-fault timeline (first 5 intervals):")
    for iv in timeline.intervals[:5]:
        print(f"  #{iv.fault_id:<3d} {iv.kind:<16s} disk {iv.disk:>2d}  "
              f"[{iv.start_s / 3600.0:7.2f} h, {iv.end_s / 3600.0:7.2f} h)  "
              f"magnitude {iv.magnitude:g}")

    # 5. the closing claims: attribution and bit-reproducibility
    report.assert_invariant()
    print(f"\nnemesis invariant holds: every excursion overlaps an active "
          f"fault ({report.unexplained_total} unexplained)")
    print(f"availability delta (shifted - traditional): "
          f"{report.availability_delta:+.4f}")
    print(f"report digest {report.digest} — rerunning the same seed "
          f"reproduces it bit for bit")
    return 0


if __name__ == "__main__":
    sys.exit(main(float(sys.argv[1]) if len(sys.argv) > 1 else 7.0))
