"""GF(2^w) arithmetic: axioms, reference cross-checks, region kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.galois import GF, PRIMITIVE_POLYNOMIALS
from tests.conftest import slow_gf_multiply

ALL_W = sorted(PRIMITIVE_POLYNOMIALS)


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------


@pytest.mark.parametrize("w", ALL_W)
def test_field_sizes(w):
    gf = GF(w)
    assert gf.size == 2**w
    assert gf.max_element == 2**w - 1


def test_fields_are_cached_singletons():
    assert GF(8) is GF(8)
    assert GF(8) is not GF(4)


def test_unsupported_word_size_rejected():
    with pytest.raises(ValueError, match="unsupported word size"):
        GF(3)
    with pytest.raises(ValueError, match="unsupported word size"):
        GF(32)


# ----------------------------------------------------------------------
# scalar arithmetic vs the bitwise reference
# ----------------------------------------------------------------------


@pytest.mark.parametrize("w", [4, 8])
def test_multiply_matches_bitwise_reference_exhaustive_small(w):
    gf = GF(w)
    poly = PRIMITIVE_POLYNOMIALS[w]
    for a in range(gf.size):
        for b in range(gf.size):
            assert gf.multiply(a, b) == slow_gf_multiply(a, b, poly, w)


def test_multiply_matches_bitwise_reference_sampled_w16(rng):
    gf = GF(16)
    poly = PRIMITIVE_POLYNOMIALS[16]
    for _ in range(500):
        a = int(rng.integers(0, gf.size))
        b = int(rng.integers(0, gf.size))
        assert gf.multiply(a, b) == slow_gf_multiply(a, b, poly, 16)


@pytest.mark.parametrize("w", ALL_W)
def test_multiplicative_identity_and_zero(w):
    gf = GF(w)
    for a in (0, 1, gf.max_element):
        assert gf.multiply(a, 1) == a
        assert gf.multiply(a, 0) == 0


@pytest.mark.parametrize("w", [2, 4, 8])
def test_inverse_exhaustive(w):
    gf = GF(w)
    for a in range(1, gf.size):
        assert gf.multiply(a, gf.inverse(a)) == 1


def test_inverse_of_zero_raises():
    with pytest.raises(ZeroDivisionError):
        GF(8).inverse(0)


def test_divide_by_zero_raises():
    with pytest.raises(ZeroDivisionError):
        GF(8).divide(5, 0)
    with pytest.raises(ZeroDivisionError):
        GF(8).divide(np.array([1, 2]), np.array([3, 0]))


def test_add_is_xor_and_self_inverse():
    gf = GF(8)
    assert gf.add(0b1010, 0b0110) == 0b1100
    assert gf.subtract is GF.add or gf.subtract(7, 7) == 0
    a = np.arange(256)
    assert np.all(gf.add(a, a) == 0)


# ----------------------------------------------------------------------
# algebraic laws (property-based)
# ----------------------------------------------------------------------


@given(a=st.integers(0, 255), b=st.integers(0, 255), c=st.integers(0, 255))
def test_gf8_multiplication_commutative_and_associative(a, b, c):
    gf = GF(8)
    assert gf.multiply(a, b) == gf.multiply(b, a)
    assert gf.multiply(a, gf.multiply(b, c)) == gf.multiply(gf.multiply(a, b), c)


@given(a=st.integers(0, 255), b=st.integers(0, 255), c=st.integers(0, 255))
def test_gf8_distributive_law(a, b, c):
    gf = GF(8)
    assert gf.multiply(a, b ^ c) == gf.multiply(a, b) ^ gf.multiply(a, c)


@given(a=st.integers(1, 255), b=st.integers(1, 255))
def test_gf8_division_inverts_multiplication(a, b):
    gf = GF(8)
    assert gf.divide(gf.multiply(a, b), b) == a


@given(a=st.integers(1, 65535), n=st.integers(-6, 6))
@settings(max_examples=60)
def test_gf16_power_matches_repeated_multiplication(a, n):
    gf = GF(16)
    expected = 1
    for _ in range(abs(n)):
        expected = gf.multiply(expected, a if n > 0 else gf.inverse(a))
    assert gf.power(a, n) == expected


def test_power_of_zero():
    gf = GF(8)
    assert gf.power(0, 0) == 1  # empty product convention
    assert gf.power(0, 3) == 0


def test_exp_log_roundtrip():
    gf = GF(8)
    for a in range(1, 256):
        assert gf.exp(gf.log(a)) == a
    with pytest.raises(ValueError):
        gf.log(0)


def test_exp_cycles_with_group_order():
    gf = GF(8)
    assert gf.exp(0) == 1
    assert gf.exp(255) == gf.exp(0)
    assert gf.exp(256) == gf.exp(1)


# ----------------------------------------------------------------------
# vectorised operations
# ----------------------------------------------------------------------


@pytest.mark.parametrize("w", [4, 8, 16])
def test_array_multiply_matches_scalar(w, rng):
    gf = GF(w)
    a = rng.integers(0, gf.size, 200)
    b = rng.integers(0, gf.size, 200)
    out = gf.multiply(a, b)
    for i in range(0, 200, 17):
        assert out[i] == gf.multiply(int(a[i]), int(b[i]))


@pytest.mark.parametrize("w", [8, 16])
def test_array_divide_matches_scalar(w, rng):
    gf = GF(w)
    a = rng.integers(0, gf.size, 100)
    b = rng.integers(1, gf.size, 100)
    out = gf.divide(a, b)
    for i in range(0, 100, 13):
        assert out[i] == gf.divide(int(a[i]), int(b[i]))


def test_scalar_results_are_python_ints():
    gf = GF(8)
    assert isinstance(gf.multiply(3, 7), int)
    assert isinstance(gf.divide(6, 3), int)
    assert isinstance(gf.inverse(9), int)
    assert isinstance(gf.power(3, 4), int)


# ----------------------------------------------------------------------
# region kernels (the coding hot path)
# ----------------------------------------------------------------------


def test_multiply_region_by_zero_one_and_constant(rng):
    gf = GF(8)
    region = rng.integers(0, 256, 64).astype(np.uint8)
    assert np.all(gf.multiply_region(0, region) == 0)
    assert np.array_equal(gf.multiply_region(1, region), region)
    c = 0x53
    expected = np.array([gf.multiply(c, int(x)) for x in region], dtype=np.uint8)
    assert np.array_equal(gf.multiply_region(c, region), expected)


def test_multiply_region_into_accumulates(rng):
    gf = GF(8)
    region = rng.integers(0, 256, 32).astype(np.uint8)
    acc = rng.integers(0, 256, 32).astype(np.uint8)
    expected = acc ^ gf.multiply_region(7, region)
    gf.multiply_region_into(7, region, acc)
    assert np.array_equal(acc, expected)


def test_multiply_region_into_constant_zero_is_noop(rng):
    gf = GF(8)
    region = rng.integers(0, 256, 32).astype(np.uint8)
    acc = rng.integers(0, 256, 32).astype(np.uint8)
    before = acc.copy()
    gf.multiply_region_into(0, region, acc)
    assert np.array_equal(acc, before)


def test_dot_regions_is_linear_combination(rng):
    gf = GF(8)
    regions = [rng.integers(0, 256, 16).astype(np.uint8) for _ in range(4)]
    coeffs = [3, 0, 1, 250]
    out = gf.dot_regions(coeffs, regions)
    expected = np.zeros(16, dtype=np.uint8)
    for c, r in zip(coeffs, regions):
        expected ^= gf.multiply_region(c, r)
    assert np.array_equal(out, expected)


def test_dot_regions_validates_lengths(rng):
    gf = GF(8)
    regions = [rng.integers(0, 256, 16).astype(np.uint8)]
    with pytest.raises(ValueError, match="equal length"):
        gf.dot_regions([1, 2], regions)
    with pytest.raises(ValueError, match="at least one region"):
        gf.dot_regions([], [])


def test_multiply_region_w16(rng):
    gf = GF(16)
    region = rng.integers(0, 65536, 32).astype(np.uint16)
    c = 0x1234
    out = gf.multiply_region(c, region)
    for i in range(0, 32, 7):
        assert out[i] == gf.multiply(c, int(region[i]))
