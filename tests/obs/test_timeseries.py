"""The simulated-time flight recorder: windows, merge, exports, gating.

The contracts under test: samples fold into fixed-width simulated-time
windows with exact count/sum/min/max and bucketed quantiles, the ring
buffer bounds memory at ``horizon`` windows, merging snapshots is
deterministic and order-preserving (the jobs=1 vs jobs=N hinge), both
export formats round-trip (JSONL recovering a torn tail), and
``REPRO_OBS=0`` makes an installed recorder invisible to components.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    DEFAULT_TS_BUCKETS,
    TimelineRecorder,
    default_recorder,
    load_timeseries_jsonl,
    load_timeseries_npz,
    scoped_recorder,
    scoped_registry,
    set_default_recorder,
    set_obs_enabled,
    window_mean,
    window_quantile,
    write_timeseries_jsonl,
    write_timeseries_npz,
)


def _recorder(**kwargs) -> TimelineRecorder:
    kwargs.setdefault("registry", False)
    return TimelineRecorder(**kwargs)


# ----------------------------------------------------------------------
# window folding
# ----------------------------------------------------------------------


def test_samples_fold_into_fixed_width_windows():
    rec = _recorder(window_s=1.0)
    s = rec.series("lat")
    for t, v in ((0.2, 1.0), (0.7, 3.0), (1.1, 5.0), (2.9, 7.0)):
        s.observe(t, v)
    wins = s.windows()
    assert [w["w"] for w in wins] == [0, 1, 2]
    assert wins[0]["count"] == 2
    assert wins[0]["sum"] == 4.0
    assert wins[0]["min"] == 1.0 and wins[0]["max"] == 3.0
    assert window_mean(wins[0]) == 2.0


def test_late_samples_clamp_into_the_open_window():
    """Completion order can lag the clock; a late sample lands in the
    open window instead of reopening a closed one."""
    rec = _recorder(window_s=1.0)
    s = rec.series("lat")
    s.observe(5.5, 1.0)
    s.observe(0.5, 9.0)  # earlier than the open window: clamps
    wins = s.windows()
    assert [w["w"] for w in wins] == [5]
    assert wins[0]["count"] == 2 and wins[0]["max"] == 9.0


def test_non_finite_samples_are_skipped():
    rec = _recorder(window_s=1.0)
    s = rec.series("lat")
    s.observe(0.1, 1.0)
    for bad in (float("nan"), float("inf"), float("-inf")):
        s.observe(0.2, bad)
    assert s.windows()[0]["count"] == 1


def test_advance_to_closes_elapsed_windows_and_runs_samplers():
    rec = _recorder(window_s=1.0)
    depth = iter([3.0, 7.0])
    rec.sample("qd", lambda: next(depth, None))
    rec.advance_to(0.5)
    rec.advance_to(1.5)  # closes window 0
    snap = rec.snapshot()
    wins = snap["series"]["qd"]["windows"]
    assert [w["w"] for w in wins] == [0, 1]
    assert wins[0]["sum"] == 3.0 and wins[1]["sum"] == 7.0


def test_horizon_bounds_closed_windows():
    rec = _recorder(window_s=1.0, horizon=4)
    s = rec.series("lat")
    for w in range(10):
        s.observe(w + 0.5, 1.0)
    rec.advance_to(100.0)
    wins = s.windows()
    assert len(wins) == 4
    assert [w["w"] for w in wins] == [6, 7, 8, 9]


def test_window_quantile_uses_bucket_upper_bounds():
    rec = _recorder(window_s=1.0)
    s = rec.series("lat")
    for v in (0.003, 0.004, 0.040):
        s.observe(0.1, v)
    win = s.windows()[0]
    # p50 covers rank 1.5 -> second sample's bucket (bound 0.005)
    assert window_quantile(win, 0.5, DEFAULT_TS_BUCKETS) == 0.005
    # p99 lands in 0.040's bucket (bound 0.05) but clamps to the max
    assert window_quantile(win, 0.99, DEFAULT_TS_BUCKETS) == pytest.approx(0.040)
    assert window_quantile({"count": 0}, 0.5, DEFAULT_TS_BUCKETS) != \
        window_quantile({"count": 0}, 0.5, DEFAULT_TS_BUCKETS)  # NaN


def test_recorder_validation():
    with pytest.raises(ValueError, match="window_s"):
        _recorder(window_s=0.0)
    with pytest.raises(ValueError, match="horizon"):
        _recorder(horizon=0)
    with pytest.raises(ValueError, match="ascending"):
        _recorder(buckets=(1.0, 0.5))


# ----------------------------------------------------------------------
# snapshot / merge determinism
# ----------------------------------------------------------------------


def _feed(rec: TimelineRecorder, samples) -> None:
    s = rec.series("lat", tenant="a")
    for t, v in samples:
        s.observe(t, v)


def test_merge_adds_counts_and_combines_extrema():
    a, b = _recorder(window_s=1.0), _recorder(window_s=1.0)
    _feed(a, [(0.1, 1.0), (0.2, 5.0)])
    _feed(b, [(0.3, 3.0), (1.2, 2.0)])
    a.merge(b.snapshot())
    wins = a.snapshot()["series"]["lat|tenant=a"]["windows"]
    assert [w["w"] for w in wins] == [0, 1]
    assert wins[0]["count"] == 3
    assert wins[0]["min"] == 1.0 and wins[0]["max"] == 5.0
    assert wins[0]["sum"] == 9.0


def test_merge_into_empty_recorder_is_identity():
    src = _recorder(window_s=0.5)
    _feed(src, [(0.1, 1.25), (0.6, 2.5), (1.4, 0.75)])
    dst = _recorder(window_s=0.5)
    dst.merge(src.snapshot())
    assert dst.snapshot() == src.snapshot()


def test_merge_rejects_mismatched_window_or_buckets():
    a = _recorder(window_s=1.0)
    b = _recorder(window_s=0.5)
    _feed(b, [(0.1, 1.0)])
    with pytest.raises(ValueError, match="window_s"):
        a.merge(b.snapshot())
    c = _recorder(window_s=1.0, buckets=(0.1, 1.0))
    _feed(c, [(0.1, 1.0)])
    with pytest.raises(ValueError, match="bucket"):
        a.merge(c.snapshot())
    a.merge({})  # empty snapshot is a no-op, not an error


def test_snapshot_series_keys_are_sorted_and_label_canonical():
    rec = _recorder(window_s=1.0)
    rec.series("z.metric").observe(0.1, 1.0)
    rec.series("a.metric", tenant="t", zone="z").observe(0.1, 1.0)
    keys = list(rec.snapshot()["series"])
    assert keys == sorted(keys)
    assert "a.metric|tenant=t,zone=z" in keys


# ----------------------------------------------------------------------
# window-close gauges on the metrics registry
# ----------------------------------------------------------------------


def test_window_close_publishes_window_gauges():
    old = set_obs_enabled(True)
    try:
        with scoped_registry() as reg:
            rec = TimelineRecorder(window_s=1.0, registry=reg)
            s = rec.series("serve.latency_s", tenant="vod")
            s.observe(0.2, 0.010)
            s.observe(0.3, 0.030)
            rec.advance_to(2.0)
            snap = reg.snapshot()
            values = {
                tuple(sorted(e["labels"].items())): e["value"]
                for e in snap["gauges"]["serve.latency_s_window"]["values"]
            }
            assert values[(("agg", "count"), ("tenant", "vod"))] == 2.0
            assert values[(("agg", "mean"), ("tenant", "vod"))] == pytest.approx(0.020)
            assert values[(("agg", "max"), ("tenant", "vod"))] == pytest.approx(0.030)
    finally:
        set_obs_enabled(old)


# ----------------------------------------------------------------------
# default recorder gating (the null-sink contract)
# ----------------------------------------------------------------------


def test_default_recorder_is_invisible_with_obs_disabled():
    rec = _recorder()
    old_rec = set_default_recorder(rec)
    old = set_obs_enabled(True)
    try:
        assert default_recorder() is rec
        set_obs_enabled(False)
        assert default_recorder() is None  # installed but gated off
    finally:
        set_obs_enabled(old)
        set_default_recorder(old_rec)


def test_scoped_recorder_disabled_installs_none():
    old = set_obs_enabled(True)
    try:
        with scoped_recorder(window_s=1.0) as outer:
            assert outer is not None and default_recorder() is outer
            with scoped_recorder(enabled=False) as inner:
                assert inner is None and default_recorder() is None
            assert default_recorder() is outer
    finally:
        set_obs_enabled(old)


def test_engine_records_latency_series_under_a_scoped_recorder():
    from repro.disksim.array import ElementArray
    from repro.disksim.disk import DiskParameters
    from repro.disksim.request import IOKind

    old = set_obs_enabled(True)
    try:
        with scoped_recorder(window_s=0.01) as rec:
            arr = ElementArray(4, 4 * 1024 * 1024, DiskParameters.savvio_10k3())
            for d in range(4):
                arr.submit(arr.element_request(d, d, IOKind.READ))
            arr.run()
            snap = rec.snapshot()
    finally:
        set_obs_enabled(old)
    wins = snap["series"]["sim.latency_s"]["windows"]
    assert sum(w["count"] for w in wins) == 4
    assert all(w["min"] > 0 for w in wins)


# ----------------------------------------------------------------------
# exports: JSONL (torn tail) and columnar npz
# ----------------------------------------------------------------------


def _sample_snapshot() -> dict:
    rec = _recorder(window_s=0.25)
    s = rec.series("lat", help="latency", tenant="a")
    for t, v in ((0.1, 0.5), (0.3, 1.5), (0.9, 2.5)):
        s.observe(t, v)
    rec.series("depth").observe(0.1, 4.0)
    return rec.snapshot()


def test_jsonl_roundtrip_preserves_every_window(tmp_path):
    snap = _sample_snapshot()

    def strip_help(s):
        return {
            k: {kk: vv for kk, vv in e.items() if kk != "help"}
            for k, e in s["series"].items()
        }

    path = write_timeseries_jsonl(tmp_path / "ts.jsonl", snap)
    loaded = load_timeseries_jsonl(path)
    assert loaded["window_s"] == snap["window_s"]
    assert loaded["buckets"] == snap["buckets"]
    assert strip_help(loaded) == strip_help(snap)


def test_jsonl_torn_tail_recovers_complete_prefix(tmp_path):
    snap = _sample_snapshot()
    path = write_timeseries_jsonl(tmp_path / "ts.jsonl", snap)
    raw = path.read_text()
    n_lines = raw.count("\n")
    path.write_text(raw[: len(raw) - 15])  # cut mid-record
    loaded = load_timeseries_jsonl(path)
    kept = sum(len(e["windows"]) for e in loaded["series"].values())
    assert 0 < kept < n_lines - 1  # lost only the torn record
    # every recovered window is intact data
    for entry in loaded["series"].values():
        for w in entry["windows"]:
            assert w["count"] >= 1
            assert len(w["counts"]) == len(loaded["buckets"]) + 1


def test_jsonl_header_line_is_self_describing(tmp_path):
    path = write_timeseries_jsonl(tmp_path / "ts.jsonl", _sample_snapshot())
    header = json.loads(path.read_text().splitlines()[0])
    assert header["kind"] == "timeseries"
    assert header["window_s"] == 0.25


def test_npz_roundtrip_is_exact(tmp_path):
    snap = _sample_snapshot()
    path = write_timeseries_npz(tmp_path / "ts.npz", snap)
    loaded = load_timeseries_npz(path)
    assert loaded["window_s"] == snap["window_s"]
    for key, entry in snap["series"].items():
        assert loaded["series"][key]["windows"] == entry["windows"]
        assert loaded["series"][key]["labels"] == entry["labels"]
