"""Ablation: the §II-A stack property, validated by simulation.

The paper's measurement methodology leans on the *stack*: rotating
logical roles across stripes makes every physical disk play every
logical role, so enumerating logical failure cases on an unrotated
array (what the Fig. 9 drivers do) must cover the same population of
per-stripe reconstruction work as physically failing disks on a
rotated stack.

Equivalence holds at the aggregate level (total bytes read and total
rebuild time across all failure cases); per-case *throughput ratios*
need not match case-by-case, because one rotated physical failure
mixes logical roles inside a single run (mean-of-ratios vs
ratio-of-means).  The bench checks both the aggregate equality and, for
the fully role-symmetric mirror method, the per-case mean as well.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.layouts import shifted_mirror, shifted_mirror_parity
from repro.raidsim.controller import RaidController


def _totals(builder, n, n_stripes, rotate):
    layout = builder(n)
    bytes_read = 0
    time_s = 0.0
    throughputs = []
    for f in range(layout.n_disks):
        ctrl = RaidController(
            builder(n), n_stripes=n_stripes, payload_bytes=8, rotate=rotate
        )
        res = ctrl.rebuild([f])
        assert res.verified
        bytes_read += res.bytes_read
        time_s += res.makespan_s
        throughputs.append(res.read_throughput_mbps)
    return bytes_read, time_s, sum(throughputs) / len(throughputs)


def test_bench_stack_rotation_equivalence_mirror(benchmark):
    n = 4

    def sweep():
        n_stripes = 2 * shifted_mirror(n).n_disks
        return (
            _totals(shifted_mirror, n, n_stripes, rotate=False),
            _totals(shifted_mirror, n, n_stripes, rotate=True),
        )

    (lb, lt, lmean), (pb, pt, pmean) = run_once(benchmark, sweep)
    assert lb == pb  # identical read volume
    assert abs(lt - pt) / lt < 0.05  # same aggregate time
    assert abs(lmean - pmean) / lmean < 0.05  # symmetric roles: per-case too
    benchmark.extra_info["logical_mean_mbps"] = lmean
    benchmark.extra_info["physical_rotated_mean_mbps"] = pmean


def test_bench_stack_rotation_equivalence_parity(benchmark):
    n = 3

    def sweep():
        n_stripes = 2 * shifted_mirror_parity(n).n_disks
        return (
            _totals(shifted_mirror_parity, n, n_stripes, rotate=False),
            _totals(shifted_mirror_parity, n, n_stripes, rotate=True),
        )

    (lb, lt, lmean), (pb, pt, pmean) = run_once(benchmark, sweep)
    assert lb == pb
    assert abs(lt - pt) / lt < 0.10
    benchmark.extra_info["logical_mean_mbps"] = lmean
    benchmark.extra_info["physical_rotated_mean_mbps"] = pmean
    benchmark.extra_info["aggregate_time_delta_pct"] = 100 * abs(lt - pt) / lt
