"""Single-parity XOR coding — the RAID 5 / mirror-with-parity kernel.

The parity disk in the paper's mirror-with-parity architecture stores
``c_j = XOR_i a[i, j]`` (the XOR sum across a stripe row).  This module
implements that computation on real byte buffers, plus the single-erasure
reconstruction it enables.
"""

from __future__ import annotations

import numpy as np

__all__ = ["xor_fold", "parity_region", "recover_from_parity", "verify_parity"]


def xor_fold(regions) -> np.ndarray:
    """XOR-fold an iterable of equal-length uint8 regions into one region."""
    regions = list(regions)
    if not regions:
        raise ValueError("xor_fold requires at least one region")
    out = np.array(regions[0], dtype=np.uint8, copy=True)
    for r in regions[1:]:
        r = np.asarray(r, dtype=np.uint8)
        if r.shape != out.shape:
            raise ValueError(f"region shape mismatch: {r.shape} vs {out.shape}")
        np.bitwise_xor(out, r, out=out)
    return out


def parity_region(data_regions) -> np.ndarray:
    """The parity region for a stripe row (alias of :func:`xor_fold`)."""
    return xor_fold(data_regions)


def recover_from_parity(surviving_regions, parity: np.ndarray) -> np.ndarray:
    """Recover the single missing data region of a row.

    Over GF(2), the lost region is the XOR of the parity with every
    surviving region: ``lost = parity XOR (XOR_i survivors_i)``.
    """
    survivors = list(surviving_regions)
    if survivors:
        return xor_fold([parity, *survivors])
    return np.array(parity, dtype=np.uint8, copy=True)


def verify_parity(data_regions, parity: np.ndarray) -> bool:
    """Whether ``parity`` equals the XOR of ``data_regions``."""
    return bool(np.array_equal(parity_region(data_regions), np.asarray(parity, dtype=np.uint8)))
