"""Leaderboard sweep: determinism, ranking invariants, pool bit-identity."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import WorkerPool
from repro.raidsim.leaderboard import (
    LeaderboardConfig,
    leaderboard_duration_s,
    run_leaderboard,
    run_leaderboard_entry,
)

#: small-but-real config reused across example-based tests
TINY = LeaderboardConfig(n=3, n_stripes=3, seed=7)

#: an even smaller explicit roster for the hypothesis sweeps
ROSTER = ("mirror", "shifted-mirror", "declustered-mirror", "rebuild-optimal-rdp")


def test_same_config_is_bit_identical():
    a = run_leaderboard(TINY)
    b = run_leaderboard(TINY)
    assert a.entries == b.entries
    assert a.ranking == b.ranking
    assert a.duration_s == b.duration_s


def test_roster_covers_the_required_contenders():
    result = run_leaderboard(TINY)
    names = {e.layout for e in result.entries}
    assert {
        "mirror", "shifted-mirror", "declustered-mirror", "rebuild-optimal-rdp"
    } <= names
    assert len(result) >= 4


def test_ranking_is_sorted_by_the_rank_key():
    result = run_leaderboard(TINY)
    ranked = result.ranked()
    keys = [e.rank_key for e in ranked]
    assert keys == sorted(keys)
    assert result.ranking == tuple(e.layout for e in ranked)
    # availability is the leading criterion: never increasing down the table
    avails = [e.availability for e in ranked]
    assert avails == sorted(avails, reverse=True)


def test_every_entry_faced_the_identical_arrival_stream():
    """The storm and serve mix are shared: same arrivals, same window."""
    result = run_leaderboard(TINY)
    # all layouts saw the same number of completed arrivals (failures
    # still complete and are counted inside `served`)
    assert len({e.served for e in result.entries}) == 1


def test_explicit_roster_and_order_preserved():
    config = LeaderboardConfig(n=3, n_stripes=2, seed=7, layouts=ROSTER)
    result = run_leaderboard(config)
    assert tuple(e.layout for e in result.entries) == ROSTER


def test_unknown_roster_name_rejected_up_front():
    with pytest.raises(ValueError):
        LeaderboardConfig(layouts=("mirror", "not-a-layout"))


def test_entry_is_a_pure_function_of_its_task():
    """A worker handed only (name, config, duration) reproduces the
    in-process entry bit for bit."""
    duration_s = leaderboard_duration_s(TINY)
    a = run_leaderboard_entry("declustered-mirror", TINY, duration_s)
    b = run_leaderboard_entry("declustered-mirror", TINY, duration_s)
    assert a == b


def test_to_dict_round_trips_ranking():
    result = run_leaderboard(TINY)
    doc = result.to_dict()
    assert doc["ranking"] == list(result.ranking)
    assert [e["layout"] for e in doc["entries"]] == doc["ranking"]
    assert doc["seed"] == TINY.seed


@given(seed=st.integers(0, 2**16))
@settings(max_examples=5, deadline=None)
def test_serial_vs_worker_pool_bit_identity(seed):
    """jobs=1 and a persistent WorkerPool produce identical entries for
    any seed — the leaderboard's core reproducibility promise."""
    config = LeaderboardConfig(n=3, n_stripes=2, seed=seed, layouts=ROSTER)
    serial = run_leaderboard(config, jobs=1)
    with WorkerPool(2) as pool:
        pooled = run_leaderboard(config, pool=pool)
    assert serial.entries == pooled.entries
    assert serial.ranking == pooled.ranking
