"""Bench: Fig. 8 — iterated arrangements and their properties at n = 3."""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig8 import run


def test_bench_fig8_iterates(benchmark):
    result = run_once(benchmark, run, 3, 6)
    data = result.data
    # paper claims, asserted again here so the bench is self-validating
    assert data[1] == {"P1": True, "P2": True, "P3": True}
    assert data[3] == {"P1": True, "P2": True, "P3": False}
    assert data[5] == {"P1": True, "P2": True, "P3": True}
    benchmark.extra_info["properties_by_iterate"] = {
        str(k): v for k, v in data.items()
    }
