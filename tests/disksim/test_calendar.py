"""Unit tests for the typed event calendar."""

from __future__ import annotations

import numpy as np
import pytest

from repro.disksim.calendar import EVENT_DTYPE, OP_CALL, OP_COMPLETE, TypedCalendar


def test_push_orders_by_time_then_seq():
    cal = TypedCalendar()
    cal.push(2.0, 3, OP_COMPLETE, 7)
    cal.push(1.0, 2, OP_COMPLETE, 5)
    cal.push(1.0, 1, OP_COMPLETE, 4)
    assert cal.peek_time() == 1.0
    batch = cal.pop_batch()
    assert [(t, s, a0) for t, s, _op, a0 in batch] == [(1.0, 1, 4), (1.0, 2, 5)]
    assert cal.pop_batch() == [(2.0, 3, OP_COMPLETE, 7)]
    assert cal.pop_batch() == []
    assert cal.peek_time() is None


def test_pop_batch_returns_whole_timestamp_group_in_seq_order():
    cal = TypedCalendar()
    for seq in (9, 4, 6, 5):
        cal.push(3.5, seq, OP_COMPLETE, seq * 10)
    batch = cal.pop_batch()
    assert [s for _t, s, _op, _a0 in batch] == [4, 5, 6, 9]
    assert len(cal) == 0


def test_call_side_table_roundtrip():
    cal = TypedCalendar()
    hits = []
    cal.push_call(1.0, 1, hits.append, ("a",))
    cal.push_call(2.0, 2, hits.append, ("b",))
    assert cal.call_count == 2
    (event,) = cal.pop_batch()
    assert event[2] == OP_CALL
    action, args = cal.take_call(event[1])
    action(*args)
    assert hits == ["a"] and cal.call_count == 1


def test_call_count_tracks_mixed_calendar():
    cal = TypedCalendar()
    cal.push(1.0, 1, OP_COMPLETE, 0)
    assert cal.call_count == 0
    cal.push_call(2.0, 2, print, ())
    assert cal.call_count == 1
    assert len(cal) == 2


def test_drain_completions_sorted_and_empties():
    cal = TypedCalendar()
    cal.push(2.0, 5, OP_COMPLETE, 1)
    cal.push(1.0, 3, OP_COMPLETE, 0)
    cal.push(1.0, 4, OP_COMPLETE, 2)
    times, seqs, disks = cal.drain_completions()
    assert times.tolist() == [1.0, 1.0, 2.0]
    assert seqs.tolist() == [3, 4, 5]
    assert disks.tolist() == [0, 2, 1]
    assert times.dtype == np.float64 and seqs.dtype == np.int64
    assert len(cal) == 0


def test_records_structured_dtype():
    cal = TypedCalendar()
    cal.push(2.0, 2, OP_COMPLETE, 9)
    cal.push_call(1.0, 1, print, ())
    rec = cal.records()
    assert rec.dtype == EVENT_DTYPE
    assert rec["time"].tolist() == [1.0, 2.0]
    assert rec["seq"].tolist() == [1, 2]
    assert rec["opcode"].tolist() == [OP_CALL, OP_COMPLETE]
    assert rec["arg0"].tolist() == [0, 9]
    # records() is a snapshot, not a drain
    assert len(cal) == 2


def test_simulation_calendar_selection(monkeypatch):
    from repro.disksim.events import Simulation

    assert Simulation(2).calendar_kind == "typed"
    assert Simulation(2, calendar="heapq").calendar_kind == "heapq"
    monkeypatch.setenv("REPRO_CALENDAR", "heapq")
    assert Simulation(2).calendar_kind == "heapq"
    assert Simulation(2, calendar="typed").calendar_kind == "typed"
    with pytest.raises(ValueError):
        Simulation(2, calendar="wheel")
