"""Property test: the bisect-based elevator matches the linear-scan spec.

The seed implementation of :class:`ElevatorScheduler.pop` scanned every
pending request (``O(pending)``); the current one keeps the queue
sorted and bisects.  The observable contract must be unchanged — same
pop, same order, for any interleaving of adds and pops at any head
position — because event timing (and therefore every experiment
artifact) depends on it.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disksim.request import IOKind, IORequest
from repro.disksim.scheduler import ElevatorScheduler


class LinearScanElevator:
    """Reference C-SCAN elevator: the seed's O(pending) linear scan."""

    def __init__(self) -> None:
        self._pending: list[IORequest] = []

    def add(self, request: IORequest) -> None:
        self._pending.append(request)

    def pop(self, head_position: int) -> IORequest:
        ahead = [r for r in self._pending if r.offset >= head_position]
        pool = ahead if ahead else self._pending
        best = min(pool, key=lambda r: (r.offset, r.req_id))
        self._pending.remove(best)
        return best

    def __len__(self) -> int:
        return len(self._pending)


# an op is either ("add", offset) or ("pop", head_position)
_ops = st.lists(
    st.one_of(
        st.tuples(st.just("add"), st.integers(0, 100)),
        st.tuples(st.just("pop"), st.integers(0, 120)),
    ),
    min_size=1,
    max_size=60,
)


@given(ops=_ops)
@settings(max_examples=200, deadline=None)
def test_elevator_matches_linear_scan_reference(ops):
    fast = ElevatorScheduler()
    reference = LinearScanElevator()
    for op, value in ops:
        if op == "add":
            request = IORequest(0, value, 10, IOKind.READ)
            fast.add(request)
            reference.add(request)
        elif len(reference):
            assert fast.pop(value) is reference.pop(value)
    # drain whatever is left, sweeping the head across the disk
    head = 0
    while len(reference):
        assert fast.pop(head) is reference.pop(head)
        head = (head + 37) % 120
    assert len(fast) == 0


@given(
    offsets=st.lists(st.integers(0, 50), min_size=1, max_size=20),
    head=st.integers(0, 60),
)
@settings(max_examples=100, deadline=None)
def test_elevator_duplicate_offsets_pop_in_request_id_order(offsets, head):
    """Equal offsets must tie-break on req_id (determinism anchor)."""
    s = ElevatorScheduler()
    requests = [IORequest(0, o, 10, IOKind.READ) for o in offsets]
    for r in requests:
        s.add(r)
    popped = [s.pop(head)]
    while len(s):
        popped.append(s.pop(popped[-1].offset))
    # every request comes out exactly once ...
    assert sorted(r.req_id for r in popped) == sorted(r.req_id for r in requests)
    # ... and equal-offset runs are served oldest-first
    for a, b in zip(popped, popped[1:]):
        if a.offset == b.offset:
            assert a.req_id < b.req_id
