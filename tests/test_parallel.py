"""Persistent worker pool: reuse, shared film payloads, bit-identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel import WorkerPool, parallel_map, resolve_jobs
from repro.workloads.film import (
    FilmSource,
    _element_payload,
    build_film_block,
    register_shared_film,
    unregister_shared_film,
)


def _square(x: int) -> int:
    return x * x


def _film_bytes(args) -> bytes:
    """Worker fn: read one film element (via shared block when mapped)."""
    seed, payload_bytes, stripe, i, j = args
    return FilmSource(payload_bytes, seed).element(stripe, i, j).tobytes()


def test_resolve_jobs_conventions():
    assert resolve_jobs(None) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs(0) >= 1


def test_pool_of_one_runs_inline():
    with WorkerPool(jobs=1) as pool:
        assert pool.map(_square, [1, 2, 3]) == [1, 4, 9]
    with pytest.raises(RuntimeError, match="closed"):
        pool.map(_square, [1, 2])


def test_pool_reused_across_maps_preserving_order():
    with WorkerPool(jobs=2) as pool:
        first = pool.map(_square, range(8))
        second = pool.map(_square, range(8, 16))
    assert first == [x * x for x in range(8)]
    assert second == [x * x for x in range(8, 16)]


def test_parallel_map_delegates_to_pool():
    with WorkerPool(jobs=2) as pool:
        assert parallel_map(_square, [3, 4], pool=pool) == [9, 16]
    # without a pool the per-call path still works
    assert parallel_map(_square, [3, 4], jobs=1) == [9, 16]


def test_film_block_matches_on_demand_generation():
    block = build_film_block(5, 8, n_stripes=3, n_i=2, n_j=2)
    for stripe in range(3):
        for i in range(2):
            for j in range(2):
                assert np.array_equal(
                    block[stripe, i, j], _element_payload(5, 8, stripe, i, j)
                )


def test_registered_block_serves_lookups_and_falls_back_out_of_range():
    seed, payload = 123, 8
    block = build_film_block(seed, payload, n_stripes=2, n_i=2, n_j=2)
    register_shared_film(seed, payload, block)
    try:
        src = FilmSource(payload, seed)
        covered = src.element(1, 1, 1)
        assert np.array_equal(covered, block[1, 1, 1])
        assert not covered.flags.writeable
        # beyond the block: generated on demand, identical content rules
        beyond = src.element(5, 0, 0)
        assert np.array_equal(beyond, _element_payload(seed, payload, 5, 0, 0))
    finally:
        unregister_shared_film(seed, payload)


def test_shared_film_workers_see_identical_bytes():
    """Workers reading through the shared-memory block must return the
    exact bytes the parent (and on-demand generation) produce."""
    seed, payload = 77, 8
    tasks = [(seed, payload, stripe, i, j) for stripe in range(2) for i in range(2) for j in range(2)]
    expected = [
        _element_payload(seed, payload, s, i, j).tobytes()
        for (_, _, s, i, j) in tasks
    ]
    with WorkerPool(jobs=2) as pool:
        pool.share_film(seed, payload, n_stripes=2, n_i=2, n_j=2)
        got = pool.map(_film_bytes, tasks)
    assert got == expected
    # the parent registration is gone after close; regeneration still agrees
    assert _film_bytes(tasks[0]) == expected[0]
