"""Write-performance measurement: the Fig. 10 experiment driver (§VII-B).

"We created a workload of one thousand random large write operations of
the size varying from one element to as large as a whole stripe" and
compared the traditional and shifted methods under the same workload.
The driver here feeds that workload through a fresh controller and
reports user-data write throughput.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.layouts import Layout
from ..disksim.array import DEFAULT_ELEMENT_SIZE
from ..disksim.disk import DiskParameters
from ..workloads.generator import random_large_writes
from .controller import RaidController, WriteResult

__all__ = ["WritePoint", "measure_write_throughput", "write_series"]


@dataclass(frozen=True)
class WritePoint:
    """Write throughput for one architecture size under the Fig. 10 workload."""

    layout_name: str
    n: int
    n_ops: int
    write_throughput_mbps: float
    redundancy_intact: bool


def measure_write_throughput(
    layout: Layout,
    n_ops: int = 1000,
    n_stripes: int = 16,
    element_size: int = DEFAULT_ELEMENT_SIZE,
    params: DiskParameters | None = None,
    strategy: str = "rmw",
    window: int = 4,
    seed: int = 42,
    payload_bytes: int = 16,
    verify: bool = True,
) -> WritePoint:
    """Run the random-large-write workload against a fresh array.

    The same seed produces the identical op sequence for every layout,
    "to ensure the fairness of our experiments".
    """
    controller = RaidController(
        layout,
        n_stripes=n_stripes,
        element_size=element_size,
        params=params,
        payload_bytes=payload_bytes,
    )
    rng = np.random.default_rng(seed)
    ops = random_large_writes(layout.n, n_stripes, n_ops=n_ops, rng=rng)
    result: WriteResult = controller.run_write_workload(
        ops, strategy=strategy, window=window, rng=rng
    )
    intact = controller.verify_redundancy() if verify else True
    return WritePoint(
        layout_name=layout.name,
        n=layout.n,
        n_ops=n_ops,
        write_throughput_mbps=result.write_throughput_mbps,
        redundancy_intact=intact,
    )


def write_series(
    layout_builder: Callable[[int], Layout],
    n_values,
    **kwargs,
) -> list[WritePoint]:
    """One Fig. 10 curve: a point per data-disk count."""
    return [measure_write_throughput(layout_builder(n), **kwargs) for n in n_values]
