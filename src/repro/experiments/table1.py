"""Experiment: reproduce Table I (paper §VI-A).

Table I enumerates the double-failure situations of the shifted mirror
method with parity, counts their cases combinatorially, and states the
read accesses each needs.  We regenerate it two ways:

* symbolically, from :func:`repro.core.analysis.table1`;
* by brute force, classifying every pair of failed disks and measuring
  its plan's access count with
  :meth:`~repro.core.layouts.MirrorParityLayout.data_recovery_read_accesses`.

The driver asserts the two agree — the reproduction is the agreement.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations

from ..core.analysis import (
    avg_read_accesses_shifted_parity,
    table1,
)
from ..core.layouts import shifted_mirror_parity
from .reporting import ExperimentResult, Table

__all__ = ["classify_failure", "enumerate_table1", "run"]


def classify_failure(n: int, failed: tuple[int, int]) -> str:
    """Which Table I situation a pair of failed disks belongs to."""
    parity = 2 * n
    a, b = sorted(failed)
    if b == parity:
        return "F1"
    if (a < n) == (b < n):
        return "F2"
    return "F3"


def enumerate_table1(n: int) -> dict[str, tuple[int, int]]:
    """Brute-force ``situation -> (num_cases, num_read_accesses)``.

    Access counts must be identical within a situation; a mismatch
    would falsify the paper's Table I (it doesn't happen).
    """
    layout = shifted_mirror_parity(n)
    out: dict[str, tuple[int, set[int]]] = {}
    for failed in combinations(range(layout.n_disks), 2):
        situation = classify_failure(n, failed)
        accesses = layout.data_recovery_read_accesses(failed)
        count, access_set = out.get(situation, (0, set()))
        access_set.add(accesses)
        out[situation] = (count + 1, access_set)
    result = {}
    for situation, (count, access_set) in out.items():
        if len(access_set) != 1:
            raise AssertionError(
                f"situation {situation} shows mixed access counts {access_set}"
            )
        result[situation] = (count, access_set.pop())
    return result


def run(n_values=(3, 4, 5, 6, 7)) -> ExperimentResult:
    """Regenerate Table I for each n and check it against enumeration."""
    blocks = []
    data = {}
    for n in n_values:
        expected = {r.situation: (r.num_cases, r.num_read_accesses) for r in table1(n)}
        measured = enumerate_table1(n)
        if expected != measured:
            raise AssertionError(
                f"Table I mismatch at n={n}: paper {expected} vs enumerated {measured}"
            )
        table = Table(
            ["situation", "description", "num cases", "read accesses"],
            title=f"Table I, n={n} data disks (enumeration matches closed form)",
        )
        for row in table1(n):
            table.add(row.situation, row.description, row.num_cases, row.num_read_accesses)
        avg = avg_read_accesses_shifted_parity(n)
        blocks.append(
            table.render()
            + f"\nAvg_Read = {avg} = {float(avg):.4f} (= 4n/(2n+1))"
        )
        data[n] = {
            "rows": measured,
            "avg_read": avg,
            "avg_read_matches_4n_over_2n_plus_1": avg == Fraction(4 * n, 2 * n + 1),
        }
    return ExperimentResult(
        experiment_id="table1",
        description="Read accesses of the shifted mirror method with parity, by failure situation",
        text="\n\n".join(blocks),
        data=data,
    )


if __name__ == "__main__":  # pragma: no cover
    print(run())
