"""Stacks: rotated logical-to-physical disk mappings (paper §II-A, §VI).

"The disks mapping from logical to physical are rotated from stripe to
stripe in order to get load-balance" — a *stack* is the set of stripes
covering all rotations, so that the loss of any physical disks, averaged
over the stack, exercises every logical failure combination with the
weights the analysis assumes (every disk equally likely to fail, [14]).

:class:`RotatedStack` implements the cyclic rotation: in stripe ``s``,
logical disk ``l`` is played by physical disk ``(l + s) % D``.  One
full stack therefore has ``D`` stripes for an architecture with ``D``
disks.  It also fixes the physical placement of elements: within each
physical disk, stripes occupy consecutive element slots, so the element
at (stripe ``s``, row ``j``) sits at per-disk offset ``s * rows + j``.
"""

from __future__ import annotations

from .layouts import Layout

__all__ = ["RotatedStack"]


class RotatedStack:
    """Cyclic logical-to-physical rotation over a layout's disks.

    Parameters
    ----------
    layout:
        The architecture whose stripes are being placed.
    n_stripes:
        Total stripes laid out; defaults to one full stack
        (= ``layout.n_disks`` stripes).
    rotate:
        If False, every stripe uses the identity mapping — the
        configuration used when measuring one *specific* logical
        failure case in isolation (the throughput experiments enumerate
        logical cases directly, which is statistically equivalent to
        physical enumeration over a rotated stack).
    """

    def __init__(self, layout: Layout, n_stripes: int | None = None, rotate: bool = True) -> None:
        self.layout = layout
        self.n_disks = layout.n_disks
        self.rows = layout.rows
        self.n_stripes = self.n_disks if n_stripes is None else n_stripes
        if self.n_stripes < 1:
            raise ValueError(f"need at least one stripe, got {self.n_stripes}")
        self.rotate = rotate

    # ------------------------------------------------------------------
    def physical_disk(self, stripe: int, logical: int) -> int:
        """Physical disk playing ``logical`` in ``stripe``."""
        self._check(stripe, logical)
        if not self.rotate:
            return logical
        return (logical + stripe) % self.n_disks

    def logical_disk(self, stripe: int, physical: int) -> int:
        """Logical role of ``physical`` in ``stripe``."""
        self._check(stripe, physical)
        if not self.rotate:
            return physical
        return (physical - stripe) % self.n_disks

    def _check(self, stripe: int, disk: int) -> None:
        if not 0 <= stripe < self.n_stripes:
            raise IndexError(f"stripe {stripe} outside stack of {self.n_stripes}")
        if not 0 <= disk < self.n_disks:
            raise IndexError(f"disk {disk} outside array of {self.n_disks}")

    # ------------------------------------------------------------------
    def element_offset(self, stripe: int, row: int) -> int:
        """Per-disk element slot of (stripe, row)."""
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} outside stripe of {self.rows} rows")
        return stripe * self.rows + row

    def elements_per_disk(self) -> int:
        return self.n_stripes * self.rows

    def place(self, stripe: int, logical_disk: int, row: int) -> tuple[int, int]:
        """Physical ``(disk, element offset)`` of a logical stripe cell.

        This is the innermost call of every rebuild/write sweep, so the
        checks and arithmetic of :meth:`physical_disk` /
        :meth:`element_offset` are inlined rather than delegated.
        """
        if not 0 <= stripe < self.n_stripes:
            raise IndexError(f"stripe {stripe} outside stack of {self.n_stripes}")
        if not 0 <= logical_disk < self.n_disks:
            raise IndexError(f"disk {logical_disk} outside array of {self.n_disks}")
        if not 0 <= row < self.rows:
            raise IndexError(f"row {row} outside stripe of {self.rows} rows")
        physical = (logical_disk + stripe) % self.n_disks if self.rotate else logical_disk
        return (physical, stripe * self.rows + row)

    # ------------------------------------------------------------------
    def logical_failures(self, physical_failed) -> list[tuple[int, ...]]:
        """Per-stripe logical failure sets for a physical failure set."""
        failed = sorted(set(physical_failed))
        return [
            tuple(sorted(self.logical_disk(s, f) for f in failed))
            for s in range(self.n_stripes)
        ]

    def covers_all_single_failures(self) -> bool:
        """Whether each physical failure hits every logical role once.

        True for a full rotated stack: physical disk ``f`` plays every
        logical role exactly once across the ``D`` stripes, which is
        what lets [14]-style counting average over a single stripe.
        """
        if not self.rotate or self.n_stripes < self.n_disks:
            return False
        roles = {self.logical_disk(s, 0) for s in range(self.n_disks)}
        return roles == set(range(self.n_disks))
