"""Galois-field arithmetic over GF(2^w).

This module is the arithmetic foundation of the erasure-coding substrate
(:mod:`repro.codes`).  The paper's experimental harness was built on
Jerasure-1.2, whose core is exactly this: table-driven GF(2^w) arithmetic
with vectorised multiply-region kernels.  We reproduce that design in
NumPy so that Reed-Solomon, EVENODD and RDP codes (the RAID 5/6 baselines)
operate on real byte buffers at useful speed.

Supported word sizes are w in {1, 2, 4, 8, 16}.  For these, full
exponential/logarithm tables fit comfortably in memory and every
field operation becomes a table lookup, which NumPy evaluates in bulk.

The primitive polynomials match Jerasure's defaults so that encodings are
bit-compatible with the reference library:

====  ==========================  ===========
w     polynomial                  hex
====  ==========================  ===========
1     x + 1                       0x3
2     x^2 + x + 1                 0x7
4     x^4 + x + 1                 0x13
8     x^8 + x^4 + x^3 + x^2 + 1   0x11D
16    x^16 + x^12 + x^3 + x + 1   0x1100B
====  ==========================  ===========

Example
-------
>>> gf = GF(8)
>>> gf.multiply(0x57, 0x83)
49
>>> gf.divide(gf.multiply(7, 11), 11)
7
"""

from __future__ import annotations

import numpy as np

__all__ = ["GF", "PRIMITIVE_POLYNOMIALS", "gf8", "gf16"]

#: Primitive polynomials indexed by word size, identical to Jerasure-1.2.
PRIMITIVE_POLYNOMIALS: dict[int, int] = {
    1: 0x3,
    2: 0x7,
    4: 0x13,
    8: 0x11D,
    16: 0x1100B,
}

_DTYPES = {1: np.uint8, 2: np.uint8, 4: np.uint8, 8: np.uint8, 16: np.uint16}

# Cache of constructed fields: building the w=16 tables costs a few ms and
# the fields are immutable, so share one instance per word size.
_FIELD_CACHE: dict[int, "GF"] = {}


class GF:
    """The finite field GF(2^w) with table-driven arithmetic.

    Instances are immutable and cached: ``GF(8) is GF(8)``.

    Parameters
    ----------
    w:
        Word size in bits.  Must be one of 1, 2, 4, 8, 16.

    Attributes
    ----------
    w : int
        Word size.
    size : int
        Number of field elements, ``2**w``.
    max_element : int
        Largest element value, ``2**w - 1``.
    dtype : numpy dtype
        Smallest unsigned integer dtype that holds an element.
    """

    __slots__ = (
        "w",
        "size",
        "max_element",
        "dtype",
        "_exp",
        "_log",
        "_inv",
        "_mul_table",
        "_div_table",
    )

    def __new__(cls, w: int) -> "GF":
        if w in _FIELD_CACHE:
            return _FIELD_CACHE[w]
        if w not in PRIMITIVE_POLYNOMIALS:
            raise ValueError(
                f"unsupported word size w={w}; choose one of {sorted(PRIMITIVE_POLYNOMIALS)}"
            )
        self = super().__new__(cls)
        self._build(w)
        _FIELD_CACHE[w] = self
        return self

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, w: int) -> None:
        self.w = w
        self.size = 1 << w
        self.max_element = self.size - 1
        self.dtype = _DTYPES[w]
        poly = PRIMITIVE_POLYNOMIALS[w]

        order = self.max_element  # multiplicative group order
        exp = np.zeros(2 * order, dtype=np.int64)
        log = np.zeros(self.size, dtype=np.int64)
        x = 1
        for i in range(order):
            exp[i] = x
            log[x] = i
            x <<= 1
            if x & self.size:
                x ^= poly
        # duplicate so exp[(log a + log b)] needs no modulo
        exp[order : 2 * order] = exp[:order]
        log[0] = -1  # sentinel; zero has no logarithm

        self._exp = exp
        self._log = log

        inv = np.zeros(self.size, dtype=self.dtype)
        inv[1:] = exp[order - log[1:]]
        self._inv = inv

        # Small fields get dense multiplication tables: a single fancy-index
        # gather is faster than two log lookups plus an add.
        if w <= 8:
            a = np.arange(self.size, dtype=np.int64)
            la = log[a]
            s = la[:, None] + la[None, :]
            tbl = exp[np.clip(s, 0, 2 * order - 1)].astype(self.dtype)
            tbl[0, :] = 0
            tbl[:, 0] = 0
            self._mul_table = tbl
            div = exp[np.clip(la[:, None] - la[None, :] + order, 0, 2 * order - 1)].astype(
                self.dtype
            )
            div[0, :] = 0
            self._div_table = div
        else:
            self._mul_table = None
            self._div_table = None

    # ------------------------------------------------------------------
    # scalar / array arithmetic
    # ------------------------------------------------------------------
    @staticmethod
    def add(a, b):
        """Field addition (XOR).  Works on scalars and arrays alike."""
        return np.bitwise_xor(a, b)

    subtract = add  # characteristic-2 field: subtraction == addition

    def multiply(self, a, b):
        """Element-wise field multiplication of scalars or arrays."""
        if self._mul_table is not None:
            out = self._mul_table[a, b]
        else:
            a_arr = np.asarray(a, dtype=np.int64)
            b_arr = np.asarray(b, dtype=np.int64)
            la = self._log[a_arr]
            lb = self._log[b_arr]
            out = self._exp[np.clip(la + lb, 0, None)].astype(self.dtype)
            out = np.where((a_arr == 0) | (b_arr == 0), 0, out)
        if np.isscalar(a) and np.isscalar(b):
            return int(out)
        return out

    def divide(self, a, b):
        """Element-wise field division ``a / b``.

        Raises
        ------
        ZeroDivisionError
            If any element of ``b`` is zero.
        """
        if np.any(np.asarray(b) == 0):
            raise ZeroDivisionError("division by zero in GF(2^w)")
        if self._div_table is not None:
            out = self._div_table[a, b]
        else:
            a_arr = np.asarray(a, dtype=np.int64)
            b_arr = np.asarray(b, dtype=np.int64)
            la = self._log[a_arr]
            lb = self._log[b_arr]
            out = self._exp[la - lb + self.max_element].astype(self.dtype)
            out = np.where(a_arr == 0, 0, out)
        if np.isscalar(a) and np.isscalar(b):
            return int(out)
        return out

    def inverse(self, a):
        """Multiplicative inverse.

        Raises
        ------
        ZeroDivisionError
            If any element of ``a`` is zero.
        """
        if np.any(np.asarray(a) == 0):
            raise ZeroDivisionError("zero has no inverse in GF(2^w)")
        out = self._inv[a]
        if np.isscalar(a):
            return int(out)
        return out

    def power(self, a, n: int):
        """Raise field element(s) ``a`` to the integer power ``n``."""
        a_arr = np.asarray(a, dtype=np.int64)
        if n == 0:
            out = np.ones_like(a_arr, dtype=self.dtype)
            return int(out) if np.isscalar(a) else out
        if n < 0:
            return self.power(self.inverse(a), -n)
        la = self._log[a_arr]
        out = self._exp[(la * n) % self.max_element].astype(self.dtype)
        out = np.where(a_arr == 0, 0, out)
        if np.isscalar(a):
            return int(out)
        return out

    def exp(self, i: int) -> int:
        """The element alpha^i, where alpha is the primitive root."""
        return int(self._exp[i % self.max_element])

    def log(self, a: int) -> int:
        """Discrete logarithm base alpha.  ``a`` must be nonzero."""
        if a == 0:
            raise ValueError("log(0) is undefined")
        return int(self._log[a])

    # ------------------------------------------------------------------
    # region (buffer) kernels — the hot path of every erasure code
    # ------------------------------------------------------------------
    def multiply_region(self, constant: int, region: np.ndarray) -> np.ndarray:
        """Multiply every word of ``region`` by a field constant.

        ``region`` is a 1-D array of this field's dtype.  Returns a new
        array; use :meth:`multiply_region_into` to accumulate.
        """
        region = np.asarray(region, dtype=self.dtype)
        if constant == 0:
            return np.zeros_like(region)
        if constant == 1:
            return region.copy()
        if self._mul_table is not None:
            return self._mul_table[constant, region]
        lc = self._log[constant]
        out = self._exp[lc + self._log[region.astype(np.int64)]].astype(self.dtype)
        np.copyto(out, 0, where=region == 0)
        return out

    def multiply_region_into(
        self, constant: int, region: np.ndarray, accumulator: np.ndarray
    ) -> None:
        """``accumulator ^= constant * region`` without temporaries where possible.

        This is the GF analogue of a fused multiply-add and is the inner
        loop of Reed-Solomon encoding: a coding word is the XOR fold of
        constant-multiplied data regions.
        """
        if constant == 0:
            return
        if constant == 1:
            np.bitwise_xor(accumulator, np.asarray(region, dtype=self.dtype), out=accumulator)
            return
        np.bitwise_xor(accumulator, self.multiply_region(constant, region), out=accumulator)

    def dot_regions(self, coefficients, regions) -> np.ndarray:
        """XOR-fold of constant-multiplied regions: ``sum_i c_i * r_i``.

        Parameters
        ----------
        coefficients:
            Iterable of field constants, one per region.
        regions:
            Iterable of equal-length 1-D arrays of the field dtype.

        Returns
        -------
        numpy.ndarray
            The coding region.
        """
        regions = list(regions)
        coefficients = list(coefficients)
        if len(regions) != len(coefficients):
            raise ValueError("coefficients and regions must have equal length")
        if not regions:
            raise ValueError("dot_regions requires at least one region")
        out = np.zeros_like(np.asarray(regions[0], dtype=self.dtype))
        for c, r in zip(coefficients, regions):
            self.multiply_region_into(int(c), r, out)
        return out

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GF(2^{self.w})"


def gf8() -> GF:
    """Convenience constructor for the byte field GF(2^8)."""
    return GF(8)


def gf16() -> GF:
    """Convenience constructor for GF(2^16)."""
    return GF(16)
