"""Deterministic synthetic element content (the paper's film file).

The authors "encoded a film file and stored 17 GB data on each data
disk" — the content itself only matters for the post-reconstruction
correctness check ("we also compared the original data on the virtual
failed disk and the recovered data").  We substitute a deterministic
pseudo-random payload: every data element's bytes are a pure function
of ``(stripe, data disk, row)``, so any recovered element can be
checked against regeneration without storing 17 GB.

Payloads are deliberately small (default 64 bytes per element): the
*timing* of a 4 MB element is the simulator's business; the *value*
only needs enough entropy to make silent corruption vanishingly
unlikely.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = ["FilmSource", "DEFAULT_PAYLOAD_BYTES"]

DEFAULT_PAYLOAD_BYTES = 64


@lru_cache(maxsize=131072)
def _element_payload(seed: int, payload_bytes: int, stripe: int, i: int, j: int) -> np.ndarray:
    """Memoised element payload — shared across all equal-seed sources.

    Spinning up a fresh :class:`numpy.random.Generator` costs tens of
    microseconds; a campaign builds many controllers over the *same*
    film, so without the memo content initialisation dominated large
    sweeps.  The cached array is marked read-only: callers copy it into
    their content stores (plain ndarray assignment), never mutate it.
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, stripe, i, j]))
    payload = rng.integers(0, 256, payload_bytes, dtype=np.uint8)
    payload.setflags(write=False)
    return payload


class FilmSource:
    """Deterministic content generator for data elements.

    Parameters
    ----------
    payload_bytes:
        Bytes of verifiable content per element.
    seed:
        Base seed; two sources with equal seeds generate identical
        "films".
    """

    def __init__(self, payload_bytes: int = DEFAULT_PAYLOAD_BYTES, seed: int = 2012) -> None:
        if payload_bytes < 1:
            raise ValueError(f"payload must be >= 1 byte, got {payload_bytes}")
        self.payload_bytes = payload_bytes
        self.seed = seed

    def element(self, stripe: int, i: int, j: int) -> np.ndarray:
        """The payload of data element ``a[i, j]`` of ``stripe``.

        The returned array is cached and read-only; copy before
        mutating (ndarray assignment into a content store copies).
        """
        return _element_payload(self.seed, self.payload_bytes, stripe, i, j)

    def fresh(self, rng: np.random.Generator) -> np.ndarray:
        """A new payload for an overwriting user write."""
        return rng.integers(0, 256, self.payload_bytes, dtype=np.uint8)
