"""Mechanical disk model calibrated to the paper's testbed (§VII).

The experiments ran on Seagate Savvio 10K.3 SAS drives (ST9300603SS):
300 GB, 10 000 rpm, 16 MB cache, measured peaks of 54.8 MB/s read and
130 MB/s write.  :class:`DiskParameters.savvio_10k3` reproduces those
figures.

Service-time model
------------------
A request's service time decomposes into positioning and transfer:

* **sequential continuation** (offset equals the previous request's
  end, same kind) — pure transfer at the peak rate; this is what lets
  the traditional mirror method stream a replica column at 54.8 MB/s;
* **scattered access** — distance-dependent seek (track-to-track up to
  full-stroke, square-root profile) plus half-revolution rotational
  latency plus transfer, plus a fixed per-access *scattered-access
  overhead*.

The overhead term models what the paper observed on real hardware: its
"random reads" of 4 MB elements ran far below the sequential peak even
after the single seek is accounted for (filesystem fragmentation,
read-ahead cache misses, head switches across tracks within the
element).  The default of 38 ms per scattered read access is
calibrated so the simulated Fig. 9 improvement factors land in the
paper's measured 1.54-4.55 band; see EXPERIMENTS.md for the
calibration note.  Because it is charged once per access, large
coalesced transfers amortise it away — which is exactly the element-
size trade-off the ablation benchmark explores.  Writes absorb into
the drive's write-back cache and skip the overhead (write peak stays
130 MB/s; the paper notes write speed exceeding read speed on this
hardware).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from .request import IOKind, IORequest

__all__ = ["DiskParameters", "DiskModel"]

_MB = 1024 * 1024


@dataclass(frozen=True)
class DiskParameters:
    """Mechanical and transfer characteristics of one disk."""

    capacity_bytes: int = 300 * 10**9
    rpm: float = 10_000.0
    seq_read_mbps: float = 54.8
    seq_write_mbps: float = 130.0
    track_to_track_seek_ms: float = 0.8
    full_stroke_seek_ms: float = 9.0
    scattered_read_overhead_ms: float = 38.0
    scattered_write_overhead_ms: float = 0.0
    cache_bytes: int = 16 * _MB

    @classmethod
    def savvio_10k3(cls) -> "DiskParameters":
        """The Seagate Savvio 10K.3 (ST9300603SS) of the paper's testbed."""
        return cls()

    @classmethod
    def ideal(cls) -> "DiskParameters":
        """A zero-overhead disk: transfer time only.

        Under this model the simulator reduces to the paper's abstract
        parallel-I/O counting (one element per disk per access), which
        the test suite exploits to cross-check plans against timings.
        """
        return cls(
            track_to_track_seek_ms=0.0,
            full_stroke_seek_ms=0.0,
            scattered_read_overhead_ms=0.0,
            scattered_write_overhead_ms=0.0,
        )

    def with_overrides(self, **kwargs) -> "DiskParameters":
        """Functional update helper for ablation sweeps."""
        return replace(self, **kwargs)

    # ------------------------------------------------------------------
    @property
    def rotation_time_s(self) -> float:
        """One full revolution, in seconds."""
        return 60.0 / self.rpm

    @property
    def avg_rotational_latency_s(self) -> float:
        """Expected half revolution."""
        return self.rotation_time_s / 2.0

    def seek_time_s(self, distance_bytes: int) -> float:
        """Square-root seek profile from track-to-track to full stroke."""
        if distance_bytes <= 0:
            return 0.0
        t2t = self.track_to_track_seek_ms / 1e3
        full = self.full_stroke_seek_ms / 1e3
        frac = min(1.0, distance_bytes / self.capacity_bytes)
        return t2t + (full - t2t) * math.sqrt(frac)

    def transfer_time_s(self, size_bytes: int, kind: IOKind) -> float:
        rate = self.seq_read_mbps if kind is IOKind.READ else self.seq_write_mbps
        return size_bytes / (rate * _MB)

    def scattered_overhead_s(self, kind: IOKind) -> float:
        ms = (
            self.scattered_read_overhead_ms
            if kind is IOKind.READ
            else self.scattered_write_overhead_ms
        )
        return ms / 1e3


class DiskModel:
    """One disk's head/cache state and service-time computation.

    The model is deliberately *stateful about position only*: the event
    engine owns time; the disk answers "how long would this request
    take right now" and updates its head position when told the request
    was served.
    """

    def __init__(self, disk_id: int, params: DiskParameters | None = None) -> None:
        self.disk_id = disk_id
        self.params = params if params is not None else DiskParameters.savvio_10k3()
        self._head: int = 0
        self._last_end: int | None = None
        self._last_kind: IOKind | None = None
        # lifetime counters
        self.busy_time: float = 0.0
        self.bytes_read: int = 0
        self.bytes_written: int = 0
        self.n_sequential: int = 0
        self.n_scattered: int = 0

    # ------------------------------------------------------------------
    def is_sequential(self, request: IORequest) -> bool:
        """Whether the request continues the previous transfer."""
        return (
            self._last_end is not None
            and request.offset == self._last_end
            and request.kind == self._last_kind
        )

    def service_time(self, request: IORequest) -> float:
        """Seconds the disk needs for ``request`` from its current state."""
        if request.end > self.params.capacity_bytes:
            raise ValueError(
                f"request [{request.offset}, {request.end}) beyond disk capacity "
                f"{self.params.capacity_bytes}"
            )
        p = self.params
        transfer = p.transfer_time_s(request.size, request.kind)
        if self.is_sequential(request):
            return transfer
        seek = p.seek_time_s(abs(request.offset - self._head))
        rotation = p.avg_rotational_latency_s
        overhead = p.scattered_overhead_s(request.kind)
        return seek + rotation + transfer + overhead

    def serve(self, request: IORequest) -> float:
        """Account for serving ``request``; returns its service time."""
        duration = self.service_time(request)
        if self.is_sequential(request):
            self.n_sequential += 1
        else:
            self.n_scattered += 1
        self._head = request.end
        self._last_end = request.end
        self._last_kind = request.kind
        self.busy_time += duration
        if request.kind is IOKind.READ:
            self.bytes_read += request.size
        else:
            self.bytes_written += request.size
        return duration

    @property
    def head_position(self) -> int:
        return self._head

    def reset_position(self, offset: int = 0) -> None:
        """Park the head (e.g. between independent experiments)."""
        self._head = offset
        self._last_end = None
        self._last_kind = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiskModel(id={self.disk_id})"
