"""Anomaly detection and attribution against the fault timeline."""

from __future__ import annotations

import pytest

from repro.nemesis import (
    AnomalyDetector,
    FaultInterval,
    FaultTimeline,
    MetricSpec,
)
from repro.obs import MetricsRegistry


def _detector(timeline=None, registry=None, **spec_kw):
    tl = timeline if timeline is not None else FaultTimeline()
    spec = MetricSpec(
        "lat", direction="high", rel_threshold=0.5, z_threshold=4.0,
        window=16, min_samples=4, **spec_kw,
    )
    reg = registry if registry is not None else MetricsRegistry()
    return AnomalyDetector(tl, metrics=(spec,), registry=reg), tl


def _warm(det, n=8, value=1.0, t0=0.0):
    for k in range(n):
        det.observe(t0 + k, "lat", value)


def test_metric_spec_validation():
    with pytest.raises(ValueError, match="direction"):
        MetricSpec("x", direction="sideways")
    with pytest.raises(ValueError, match="rel_threshold"):
        MetricSpec("x", rel_threshold=0.0)


def test_unknown_metric_and_duplicate_watch_are_rejected():
    det, _ = _detector()
    with pytest.raises(ValueError, match="not on the watchlist"):
        det.observe(0.0, "nope", 1.0)
    with pytest.raises(ValueError, match="already watched"):
        det.watch(MetricSpec("lat"))
    det.watch(MetricSpec("extra"))
    assert det.observe(0.0, "extra", 1.0) is None


def test_excursion_during_a_fault_is_attributed():
    tl = FaultTimeline()
    tl.record(FaultInterval(5, "fail-slow", 2, 100.0, 200.0, 4.0))
    det, _ = _detector(tl)
    _warm(det, t0=0.0)
    exc = det.observe(150.0, "lat", 10.0)
    assert exc is not None and exc.explained
    assert exc.attributed_to == (5,)
    assert exc.attributed_kinds == ("fail-slow",)
    rep = det.report()
    assert rep.n_excursions == 1
    assert rep.attribution_coverage == 1.0
    rep.assert_invariant()  # must not raise


def test_excursion_with_no_active_fault_fails_the_invariant():
    det, _ = _detector()
    _warm(det)
    exc = det.observe(50.0, "lat", 10.0)
    assert exc is not None and not exc.explained
    rep = det.report()
    assert rep.unexplained == (exc,)
    assert rep.attribution_coverage == 0.0
    with pytest.raises(AssertionError, match="overlap no active fault"):
        rep.assert_invariant()


def test_margin_attributes_excursions_trailing_a_fault():
    tl = FaultTimeline()
    tl.record(FaultInterval(0, "transient-burst", -1, 100.0, 200.0, 0.5))
    reg = MetricsRegistry()
    spec = MetricSpec("lat", window=16, min_samples=4)
    det = AnomalyDetector(tl, metrics=(spec,), margin_s=30.0, registry=reg)
    _warm(det)
    exc = det.observe(220.0, "lat", 10.0)  # 20 s after deactivation
    assert exc is not None and exc.explained


def test_fault_time_samples_never_grow_the_baseline():
    """A fault must not normalise its own damage."""
    tl = FaultTimeline()
    tl.record(FaultInterval(0, "fail-slow", 1, 100.0, 1e9, 8.0))
    det, _ = _detector(tl)
    _warm(det, t0=0.0)  # quiet era: baseline at 1.0
    before = det.baseline("lat").mean
    for k in range(20):
        det.observe(200.0 + k, "lat", 1.2)  # elevated but not an excursion
    assert det.baseline("lat").mean == before
    # damage past the threshold still flags, even after 20 sick samples
    assert det.observe(300.0, "lat", 10.0) is not None


def test_quiet_override_gates_baseline_growth():
    det, _ = _detector()
    for k in range(8):
        det.observe(float(k), "lat", 1.0, quiet=False)
    assert not det.baseline("lat").ready
    rep = det.report()
    assert rep.n_samples == 8 and rep.n_quiet_samples == 0


def test_low_direction_flags_throughput_collapse():
    tl = FaultTimeline()
    tl.record(FaultInterval(0, "disk-death", 3, 90.0, 1e9))
    spec = MetricSpec("tput", direction="low", window=16, min_samples=4)
    det = AnomalyDetector(tl, metrics=(spec,), registry=MetricsRegistry())
    for k in range(8):
        det.observe(float(k), "tput", 100.0)
    assert det.observe(50.0, "tput", 99.0) is None
    exc = det.observe(100.0, "tput", 5.0)
    assert exc is not None and exc.attributed_kinds == ("disk-death",)


def test_detector_publishes_excursion_counters():
    reg = MetricsRegistry()
    det, _ = _detector(registry=reg)
    _warm(det)
    det.observe(50.0, "lat", 10.0)  # unexplained excursion
    assert reg.counter("nemesis.excursions_total").value(metric="lat") == 1.0
    assert (
        reg.counter("nemesis.unexplained_excursions_total").value(metric="lat")
        == 1.0
    )


def test_empty_report_has_full_coverage():
    det, _ = _detector()
    rep = det.report()
    assert rep.n_excursions == 0
    assert rep.attribution_coverage == 1.0
    rep.assert_invariant()
    d = rep.to_dict()
    assert d["n_unexplained"] == 0 and d["excursions"] == []


def test_nan_sample_abstains_without_feeding_the_baseline():
    """NaN = "nothing measured": no excursion, no baseline growth."""
    det, _ = _detector()
    _warm(det)
    before_mean = det._baselines["lat"].mean
    assert det.observe(50.0, "lat", float("nan")) is None
    assert det._baselines["lat"].mean == before_mean
    rep = det.report()
    assert rep.n_excursions == 0
    rep.assert_invariant()


def test_metric_spec_selects_its_baseline_estimator():
    from repro.obs import EWMABaseline, RollingBaseline, SeasonalBaseline

    assert isinstance(MetricSpec("m").make_baseline(), RollingBaseline)
    e = MetricSpec("m", baseline="ewma", ewma_alpha=0.2).make_baseline()
    assert isinstance(e, EWMABaseline) and e.alpha == 0.2
    s = MetricSpec(
        "m", baseline="seasonal", period_s=3600.0, n_phases=6
    ).make_baseline()
    assert isinstance(s, SeasonalBaseline)
    assert s.period_s == 3600.0 and s.n_phases == 6
    with pytest.raises(ValueError, match="baseline"):
        MetricSpec("m", baseline="fourier")


def _detector_for(spec) -> AnomalyDetector:
    return AnomalyDetector(
        FaultTimeline(), metrics=(spec,), registry=MetricsRegistry()
    )


def test_detector_routes_sample_time_to_a_seasonal_baseline():
    """A time-aware baseline judges each sample in its phase: the same
    value is quiet at the peak-hour phase, an excursion at the trough."""
    det = _detector_for(MetricSpec(
        "lat", baseline="seasonal", period_s=100.0, n_phases=2, min_samples=2
    ))
    for day in range(6):
        t0 = day * 100.0
        for k in range(4):
            det.observe(t0 + 10 * k, "lat", 10.0 + 0.01 * k)
            det.observe(t0 + 50 + 10 * k, "lat", 1.0 + 0.01 * k)
    assert det.observe(625.0, "lat", 6.0) is None  # ordinary at the peak
    exc = det.observe(675.0, "lat", 6.0)  # same value at the trough
    assert exc is not None and not exc.explained


def test_detector_with_ewma_flags_a_creeping_drift():
    """The rolling default absorbs a slow ramp; an EWMA-configured
    detector keeps long memory and reports it as an excursion."""
    ewma_det = _detector_for(MetricSpec(
        "lat", baseline="ewma", ewma_alpha=0.05, rel_threshold=0.02, window=16
    ))
    roll_det = _detector_for(MetricSpec("lat", rel_threshold=0.02, window=16))
    ewma_flags = roll_flags = 0
    for k in range(300):
        value = 1.0 + 0.003 * k
        ewma_flags += ewma_det.observe(float(k), "lat", value) is not None
        roll_flags += roll_det.observe(float(k), "lat", value) is not None
    assert roll_flags == 0
    assert ewma_flags > 0
