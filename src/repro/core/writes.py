"""Write plans: small/large writes and parity-update strategies (§VI-C, §VII-B).

A :class:`WritePlan` lists, per global disk, the element rows that must
be written (and, for parity architectures, read first).  As with
reconstruction, the parallel-I/O cost of a plan is the *maximum* number
of element operations on any single disk:

* the traditional and shifted mirror methods write a small write's two
  (or three, with parity) target elements on distinct disks — one write
  access, the theoretical optimum;
* a large write of a full data row lands on ``n`` distinct data disks,
  ``n`` distinct mirror disks (Property 3!) and the parity disk — again
  one access.  Arrangements violating Property 3 need more.

Parity updates for partial-row writes use one of the two classic
strategies (§VII-B):

* ``rmw`` (read-modify-write) — read the old data elements and the old
  parity, then ``new_parity = old_parity XOR old_data XOR new_data``;
* ``reconstruct`` (reconstruct-write) — read the row elements *not*
  being written and recompute parity from scratch.

Full-row writes never read: parity is computed from the new data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["WritePlan", "ParityStrategy"]

ParityStrategy = str  # "rmw" | "reconstruct"


@dataclass
class WritePlan:
    """Per-disk element reads and writes realising one logical write.

    Attributes
    ----------
    writes:
        ``disk -> sorted rows`` to write.
    reads:
        ``disk -> sorted rows`` that must be read *before* the writes
        (parity-update inputs).  Empty for the plain mirror method.
    """

    writes: dict[int, list[int]] = field(default_factory=dict)
    reads: dict[int, list[int]] = field(default_factory=dict)

    def add_write(self, disk: int, row: int) -> None:
        rows = self.writes.setdefault(disk, [])
        if row not in rows:
            rows.append(row)
            rows.sort()

    def add_read(self, disk: int, row: int) -> None:
        rows = self.reads.setdefault(disk, [])
        if row not in rows:
            rows.append(row)
            rows.sort()

    @property
    def num_write_accesses(self) -> int:
        """Max element writes on one disk == parallel write accesses."""
        if not self.writes:
            return 0
        return max(len(rows) for rows in self.writes.values())

    @property
    def num_read_accesses(self) -> int:
        if not self.reads:
            return 0
        return max(len(rows) for rows in self.reads.values())

    @property
    def total_elements_written(self) -> int:
        return sum(len(rows) for rows in self.writes.values())

    @property
    def total_elements_read(self) -> int:
        return sum(len(rows) for rows in self.reads.values())

    def merge(self, other: "WritePlan") -> "WritePlan":
        """Union of two plans (e.g. a multi-row logical write)."""
        out = WritePlan()
        for plan in (self, other):
            for disk, rows in plan.writes.items():
                for r in rows:
                    out.add_write(disk, r)
            for disk, rows in plan.reads.items():
                for r in rows:
                    out.add_read(disk, r)
        return out
