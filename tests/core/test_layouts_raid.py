"""RAID 5 / RAID 6 baseline layouts: plans and the shorten geometry."""

from __future__ import annotations

from itertools import combinations

import pytest

from repro.core.errors import LayoutError, UnrecoverableFailureError
from repro.core.layouts import RAID5Layout, RAID6Layout
from repro.core.reconstruction import RecoveryMethod


# ----------------------------------------------------------------------
# RAID 5
# ----------------------------------------------------------------------


def test_raid5_counts():
    lay = RAID5Layout(5)
    assert lay.n_disks == 6
    assert lay.parity_disk == 5
    assert lay.fault_tolerance == 1
    assert lay.storage_efficiency() == 5 / 6


def test_raid5_needs_two_disks():
    with pytest.raises(LayoutError):
        RAID5Layout(1)


def test_raid5_small_write_rmw():
    lay = RAID5Layout(4)
    plan = lay.write_plan([(1, 2)])
    assert plan.total_elements_written == 2  # data + parity
    assert plan.num_write_accesses == 1
    assert plan.total_elements_read == 2  # old data + old parity


def test_raid5_full_row_write_no_reads():
    lay = RAID5Layout(4)
    plan = lay.large_write_plan(0)
    assert plan.total_elements_read == 0
    assert plan.num_write_accesses == 1


def test_raid5_reconstruction_reads_everything():
    """The paper's §II-C criticism: every intact element must be read."""
    n = 5
    lay = RAID5Layout(n)
    for f in range(n):
        plan = lay.reconstruction_plan([f])
        assert plan.num_read_accesses == n
        assert plan.total_elements_read == n * n  # (n-1) data cols + parity col
        assert all(s.method is RecoveryMethod.XOR for s in plan.steps)
    parity_plan = lay.reconstruction_plan([n])
    assert all(s.method is RecoveryMethod.RECOMPUTE for s in parity_plan.steps)


def test_raid5_double_failure_rejected():
    with pytest.raises(UnrecoverableFailureError):
        RAID5Layout(4).reconstruction_plan([0, 1])


# ----------------------------------------------------------------------
# RAID 6 with the shorten method
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "n,code,p",
    [(4, "evenodd", 5), (5, "evenodd", 5), (6, "evenodd", 7), (4, "rdp", 5), (6, "rdp", 7), (7, "rdp", 11)],
)
def test_shorten_prime_selection(n, code, p):
    lay = RAID6Layout(n, code)
    assert lay.p == p
    assert lay.rows == p - 1


def test_raid6_counts_and_efficiency():
    lay = RAID6Layout(6, "rdp")
    assert lay.n_disks == 8
    assert lay.p_disk == 6 and lay.q_disk == 7
    assert lay.storage_efficiency() == 6 / 8
    assert lay.fault_tolerance == 2


def test_raid6_unknown_code_rejected():
    with pytest.raises(ValueError, match="unknown RAID 6 code"):
        RAID6Layout(4, "pcode")


def test_raid6_single_data_failure_uses_row_parity():
    lay = RAID6Layout(5, "rdp")
    plan = lay.reconstruction_plan([2])
    assert all(s.method is RecoveryMethod.XOR for s in plan.steps)
    assert lay.q_disk not in plan.reads  # Q untouched on the RAID 5 path
    assert plan.num_read_accesses == lay.rows


@pytest.mark.parametrize("code", ["evenodd", "rdp"])
def test_raid6_double_failure_reads_all_intact_elements(code):
    """The core criticism behind Fig. 7's RAID 6 curve."""
    lay = RAID6Layout(5, code)
    for failed in combinations(range(lay.n_disks), 2):
        plan = lay.reconstruction_plan(failed)
        assert plan.num_read_accesses == lay.rows, failed
        assert plan.total_elements_read == (lay.n_disks - 2) * lay.rows, failed


def test_raid6_small_write_touches_both_parities():
    lay = RAID6Layout(5, "rdp")
    plan = lay.write_plan([(1, 2)])
    write_disks = set(plan.writes)
    assert lay.p_disk in write_disks and lay.q_disk in write_disks
    # not update-optimal: strictly more than the mirror-parity 3 writes
    # (RDP dirties the element's diagonal AND the row-parity diagonal)
    assert plan.total_elements_written == 4


def test_rdp_write_q_fanout():
    """RDP: a[i, j] dirties diagonals <i+j>_p and <j-1>_p (P cascade),
    dropping whichever equals the parity-less diagonal p-1."""
    lay = RAID6Layout(4, "rdp")  # p = 5
    # (1, 3): own diagonal 4 == p-1 drops, P cascade hits <3-1> = 2
    assert lay.q_rows_updated(1, 3) == [2]
    # (0, 0): own diagonal 0, P cascade <0-1> = 4 == p-1 drops
    assert lay.q_rows_updated(0, 0) == [0]
    # (1, 1): own 2 and cascade 0, both kept
    assert lay.q_rows_updated(1, 1) == [0, 2]


def test_evenodd_adjuster_write_cascades_to_all_q():
    """EVENODD: touching the special diagonal rewrites every Q element
    — the worst-case update cost the paper's §II-C2 refers to."""
    lay = RAID6Layout(5, "evenodd")  # p = 5
    # (i + j) % 5 == 4: e.g. i=1, j=3
    assert lay.q_rows_updated(1, 3) == [0, 1, 2, 3]
    assert lay.q_rows_updated(0, 0) == [0]
    plan = lay.write_plan([(1, 3)])
    assert len(plan.writes[lay.q_disk]) == lay.rows


def test_raid6_full_stripe_write_no_reads():
    lay = RAID6Layout(4, "rdp")
    cells = [(i, j) for i in range(4) for j in range(lay.rows)]
    plan = lay.write_plan(cells)
    assert plan.total_elements_read == 0


def test_raid6_row_out_of_range_rejected():
    lay = RAID6Layout(4, "rdp")
    with pytest.raises(LayoutError, match="outside stripe"):
        lay.write_plan([(0, lay.rows)])


def test_raid6_triple_failure_rejected():
    with pytest.raises(UnrecoverableFailureError):
        RAID6Layout(5, "rdp").reconstruction_plan([0, 1, 2])


@pytest.mark.parametrize("code", ["evenodd", "rdp"])
@pytest.mark.parametrize("n", [3, 4, 5])
def test_q_rows_updated_matches_actual_code_diff(code, n):
    """Ground truth: flip one element, re-encode, and diff the Q column
    — the dirtied rows must be exactly q_rows_updated."""
    import numpy as np

    from repro.codes.evenodd import EvenOdd
    from repro.codes.rdp import RDP

    lay = RAID6Layout(n, code)
    impl = EvenOdd(lay.p, n) if code == "evenodd" else RDP(lay.p, n)
    rng = np.random.default_rng(1)
    data = rng.integers(0, 256, (lay.rows, n, 4), dtype=np.uint8)
    _, q_before = impl.encode(data)
    for i in range(n):
        for j in range(lay.rows):
            mutated = data.copy()
            mutated[j, i] ^= 0xA5
            _, q_after = impl.encode(mutated)
            dirty = [r for r in range(lay.rows) if not np.array_equal(q_before[r], q_after[r])]
            assert dirty == lay.q_rows_updated(i, j), (code, n, i, j)
