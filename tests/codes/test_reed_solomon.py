"""Reed-Solomon: systematic encode, decode under every erasure pattern."""

from __future__ import annotations

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.reed_solomon import RSCode


def _random_data(rng, k, size=64):
    return [rng.integers(0, 256, size).astype(np.uint8) for _ in range(k)]


@pytest.mark.parametrize("k,m,w", [(3, 2, 8), (5, 3, 8), (4, 2, 16), (10, 4, 8)])
def test_decode_every_erasure_pattern(k, m, w, rng):
    code = RSCode(k, m, w)
    data = _random_data(rng, k)
    devices = data + code.encode(data)
    for lost in combinations(range(k + m), m):
        got = code.decode_all([None if i in lost else devices[i] for i in range(k + m)])
        for i in range(k + m):
            assert np.array_equal(got[i], devices[i]), (lost, i)


def test_encode_is_systematic(rng):
    code = RSCode(4, 2)
    data = _random_data(rng, 4)
    devices = code.decode_all(data + [None, None])
    for i in range(4):
        assert np.array_equal(devices[i], data[i])


def test_decode_with_no_erasures_returns_data(rng):
    code = RSCode(3, 2)
    data = _random_data(rng, 3)
    coding = code.encode(data)
    out = code.decode(data + coding)
    for i in range(3):
        assert np.array_equal(out[i], data[i])


def test_too_many_erasures_rejected(rng):
    code = RSCode(3, 2)
    data = _random_data(rng, 3)
    devices = data + code.encode(data)
    broken = [None, None, None, devices[3], devices[4]]
    with pytest.raises(ValueError, match="exceed tolerance"):
        code.decode(broken)


def test_wrong_slot_count_rejected(rng):
    code = RSCode(3, 2)
    with pytest.raises(ValueError, match="region slots"):
        code.decode([None] * 4)
    with pytest.raises(ValueError, match="data regions"):
        code.encode(_random_data(rng, 2))


def test_unequal_region_lengths_rejected(rng):
    code = RSCode(2, 1)
    data = [np.zeros(8, dtype=np.uint8), np.zeros(16, dtype=np.uint8)]
    with pytest.raises(ValueError, match="equal length"):
        code.encode(data)


def test_w16_requires_even_length():
    code = RSCode(2, 1, w=16)
    with pytest.raises(ValueError, match="even"):
        code.encode([np.zeros(7, dtype=np.uint8), np.zeros(7, dtype=np.uint8)])


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError, match="k >= 1"):
        RSCode(0, 2)
    with pytest.raises(ValueError, match="exceeds field size"):
        RSCode(250, 10, w=8)


def test_coding_is_deterministic(rng):
    code = RSCode(4, 2)
    data = _random_data(rng, 4)
    assert all(
        np.array_equal(a, b) for a, b in zip(code.encode(data), code.encode(data))
    )


def test_encoding_linear_in_data(rng):
    """RS over GF(2^w) is linear: code(a XOR b) == code(a) XOR code(b)."""
    code = RSCode(3, 2)
    a = _random_data(rng, 3)
    b = _random_data(rng, 3)
    ab = [x ^ y for x, y in zip(a, b)]
    ca, cb, cab = code.encode(a), code.encode(b), code.encode(ab)
    for x, y, z in zip(ca, cb, cab):
        assert np.array_equal(x ^ y, z)


@given(seed=st.integers(0, 2**31), lost_seed=st.integers(0, 2**31))
@settings(max_examples=25, deadline=None)
def test_random_roundtrips_property(seed, lost_seed):
    rng = np.random.default_rng(seed)
    code = RSCode(5, 3)
    data = _random_data(rng, 5, size=32)
    devices = data + code.encode(data)
    lost_rng = np.random.default_rng(lost_seed)
    lost = set(lost_rng.choice(8, size=3, replace=False).tolist())
    got = code.decode_all([None if i in lost else devices[i] for i in range(8)])
    for i in range(8):
        assert np.array_equal(got[i], devices[i])
