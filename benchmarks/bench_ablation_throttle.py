"""Ablation: rebuild throttling x arrangement (the orthogonality claim).

§VI-B: "Different reconstruction strategies and optimizations [10, 11]
may ... trade off between data availability and reconstruction
efficiency; our shifted element arrangement can be implemented
orthogonally with them."  We sweep a rebuild-rate throttle (the md
``speed_limit`` analogue) under live user reads and check:

* throttling trades rebuild time for user latency under *both*
  arrangements (the knob works);
* at every throttle point the shifted arrangement keeps a lower user
  latency than the traditional one — the gains compose.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.layouts import shifted_mirror, traditional_mirror
from repro.disksim.scheduler import PriorityScheduler
from repro.raidsim.controller import RaidController
from repro.raidsim.reconstruction import OnlineReconstruction
from repro.workloads.generator import user_read_stream

N = 5
STRIPES = 20
THROTTLES = (0.0, 0.05, 0.2)


def _measure(builder, throttle):
    ctrl = RaidController(
        builder(N),
        n_stripes=STRIPES,
        payload_bytes=8,
        scheduler_factory=PriorityScheduler,
    )
    reads = user_read_stream(N, STRIPES, duration_s=2.0, rate_per_s=10, target_disk=0)
    res = OnlineReconstruction(ctrl, [0], reads, throttle_delay_s=throttle).run()
    assert res.rebuild.verified
    return res.mean_user_latency_s, res.rebuild.makespan_s


def test_bench_throttle_tradeoff_and_orthogonality(benchmark):
    def sweep():
        return {
            (name, t): _measure(builder, t)
            for name, builder in (("trad", traditional_mirror), ("shift", shifted_mirror))
            for t in THROTTLES
        }

    res = run_once(benchmark, sweep)
    for name in ("trad", "shift"):
        lat = [res[(name, t)][0] for t in THROTTLES]
        mk = [res[(name, t)][1] for t in THROTTLES]
        # the knob works: stronger throttle -> slower rebuild, better latency
        assert mk[-1] > mk[0], name
        assert lat[-1] < lat[0], name
    # orthogonality: shifted wins at every throttle point
    for t in THROTTLES:
        assert res[("shift", t)][0] < res[("trad", t)][0], t
    benchmark.extra_info["latency_ms_and_makespan_s"] = {
        f"{name}@{t}": (lat * 1e3, mk) for (name, t), (lat, mk) in res.items()
    }
