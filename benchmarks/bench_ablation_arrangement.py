"""Ablation: arrangement family — what each property buys (§VI-E).

Compares identity, shifted, iterate-3 (P1/P2 but no P3 at n=3) and
iterate-5 (all three) arrangements:

* reconstruction gain needs P1/P2 — iterate-3 and iterate-5 match the
  shifted arrangement, identity does not;
* large-write cost needs P3 — iterate-3 degenerates to n write
  accesses while the others stay at 1.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.core.arrangement import (
    IdentityArrangement,
    IteratedArrangement,
    ShiftedArrangement,
)
from repro.core.layouts import MirrorLayout
from repro.raidsim.controller import RaidController
from repro.workloads.generator import random_large_writes

N = 3
ARRANGEMENTS = {
    "identity": lambda: IdentityArrangement(N),
    "shifted": lambda: ShiftedArrangement(N),
    "iterate3": lambda: IteratedArrangement(N, 3),
    "iterate5": lambda: IteratedArrangement(N, 5),
}


def test_bench_arrangement_reconstruction(benchmark):
    def sweep():
        out = {}
        for name, arr in ARRANGEMENTS.items():
            ctrl = RaidController(MirrorLayout(N, arr()), n_stripes=16, payload_bytes=8)
            res = ctrl.rebuild([0])
            assert res.verified
            out[name] = res.read_throughput_mbps
        return out

    res = run_once(benchmark, sweep)
    assert res["shifted"] > 1.5 * res["identity"]
    # any P1/P2 arrangement parallelises reconstruction equally well
    assert abs(res["iterate5"] - res["shifted"]) / res["shifted"] < 0.1
    assert abs(res["iterate3"] - res["shifted"]) / res["shifted"] < 0.1
    benchmark.extra_info.update(res)


def test_bench_arrangement_write_cost(benchmark):
    def sweep():
        out = {}
        for name, arr in ARRANGEMENTS.items():
            lay = MirrorLayout(N, arr())
            out[name] = max(
                lay.large_write_plan(j).num_write_accesses for j in range(N)
            )
        return out

    res = run_once(benchmark, sweep)
    assert res["identity"] == res["shifted"] == res["iterate5"] == 1
    assert res["iterate3"] == N  # the P3 violation costs n accesses
    benchmark.extra_info.update(res)


def test_bench_arrangement_write_throughput(benchmark):
    """The P3 violation shows up as measured write throughput too."""

    def measure(arr_factory):
        ctrl = RaidController(MirrorLayout(N, arr_factory()), n_stripes=8, payload_bytes=8)
        rng = np.random.default_rng(3)
        ops = random_large_writes(N, 8, n_ops=60, rng=rng)
        return ctrl.run_write_workload(ops, window=1, rng=rng).write_throughput_mbps

    def sweep():
        return {name: measure(arr) for name, arr in ARRANGEMENTS.items()}

    res = run_once(benchmark, sweep)
    assert res["iterate3"] < 0.9 * res["shifted"]
    benchmark.extra_info.update(res)
