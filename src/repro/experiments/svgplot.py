"""Minimal dependency-free SVG line charts for the figure experiments.

The evaluation environment has no plotting stack, so the reproduction
renders its figures as hand-rolled SVG: axes, ticks, one polyline per
series, a legend — enough to eyeball the curves against the paper's
Figs. 7, 9 and 10.  :func:`render_all` writes one SVG per figure.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from xml.sax.saxutils import escape

__all__ = ["LineChart", "GanttChart", "render_all", "render_rebuild_timelines"]

# a small colour cycle that survives grayscale printing
_COLORS = ["#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b"]


@dataclass
class LineChart:
    """A single-axes line chart rendered to SVG markup.

    Series are added with :meth:`add_series`; :meth:`to_svg` lays out
    axes with "nice" ticks and returns the document as a string.
    """

    title: str
    x_label: str
    y_label: str
    width: int = 640
    height: int = 420
    _series: list[tuple[str, list[float], list[float]]] = field(default_factory=list)
    _bands: list[tuple[float, float, str, str]] = field(default_factory=list)

    margin_left: int = 70
    margin_right: int = 20
    margin_top: int = 40
    margin_bottom: int = 55

    def add_series(self, name: str, xs, ys) -> None:
        xs = [float(x) for x in xs]
        ys = [float(y) for y in ys]
        if len(xs) != len(ys):
            raise ValueError(f"series {name!r}: {len(xs)} xs vs {len(ys)} ys")
        if not xs:
            raise ValueError(f"series {name!r} is empty")
        self._series.append((name, xs, ys))

    def add_band(
        self, x0: float, x1: float, label: str = "", color: str = "#d62728"
    ) -> None:
        """Shade the x-interval ``[x0, x1]`` behind the series.

        Bands render as translucent full-height rectangles (with a
        hover ``<title>``) — the dashboard uses them to overlay active
        fault intervals on latency/progress curves.  Bands widen the
        x-bounds, so an interval outlasting the data stays visible.
        """
        x0, x1 = float(x0), float(x1)
        if x1 < x0:
            raise ValueError(f"band ends at {x1} before it starts at {x0}")
        self._bands.append((x0, x1, label, color))

    # ------------------------------------------------------------------
    @staticmethod
    def _nice_ticks(lo: float, hi: float, target: int = 6) -> list[float]:
        """Round tick positions covering [lo, hi]."""
        if hi <= lo:
            hi = lo + 1.0
        raw_step = (hi - lo) / max(target - 1, 1)
        magnitude = 10 ** int(f"{raw_step:e}".split("e")[1])
        for mult in (1, 2, 2.5, 5, 10):
            step = mult * magnitude
            if step >= raw_step:
                break
        start = step * int(lo / step)
        if start > lo:
            start -= step
        ticks = []
        t = start
        while t <= hi + step / 2:
            ticks.append(round(t, 10))
            t += step
        return ticks

    def _bounds(self) -> tuple[float, float, float, float]:
        xs = [x for _, sx, _ in self._series for x in sx]
        for x0, x1, _, _ in self._bands:
            xs.extend((x0, x1))
        ys = [y for _, _, sy in self._series for y in sy]
        y_lo = min(0.0, min(ys))
        return min(xs), max(xs), y_lo, max(ys)

    # ------------------------------------------------------------------
    def to_svg(self) -> str:
        if not self._series:
            raise ValueError("chart has no series")
        x_lo, x_hi, y_lo, y_hi = self._bounds()
        x_ticks = self._nice_ticks(x_lo, x_hi)
        y_ticks = self._nice_ticks(y_lo, y_hi)
        x_lo, x_hi = min(x_lo, x_ticks[0]), max(x_hi, x_ticks[-1])
        y_lo, y_hi = min(y_lo, y_ticks[0]), max(y_hi, y_ticks[-1])

        plot_w = self.width - self.margin_left - self.margin_right
        plot_h = self.height - self.margin_top - self.margin_bottom

        def px(x: float) -> float:
            return self.margin_left + (x - x_lo) / (x_hi - x_lo) * plot_w

        def py(y: float) -> float:
            return self.margin_top + plot_h - (y - y_lo) / (y_hi - y_lo) * plot_h

        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}" '
            f'font-family="sans-serif" font-size="12">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
            f'<text x="{self.width / 2}" y="20" text-anchor="middle" '
            f'font-size="14" font-weight="bold">{escape(self.title)}</text>',
        ]
        # gridlines + ticks
        for t in y_ticks:
            y = py(t)
            parts.append(
                f'<line x1="{self.margin_left}" y1="{y:.1f}" '
                f'x2="{self.margin_left + plot_w}" y2="{y:.1f}" '
                f'stroke="#dddddd" stroke-width="1"/>'
            )
            parts.append(
                f'<text x="{self.margin_left - 6}" y="{y + 4:.1f}" '
                f'text-anchor="end">{t:g}</text>'
            )
        for t in x_ticks:
            x = px(t)
            parts.append(
                f'<line x1="{x:.1f}" y1="{self.margin_top + plot_h}" '
                f'x2="{x:.1f}" y2="{self.margin_top + plot_h + 5}" '
                f'stroke="black" stroke-width="1"/>'
            )
            parts.append(
                f'<text x="{x:.1f}" y="{self.margin_top + plot_h + 18}" '
                f'text-anchor="middle">{t:g}</text>'
            )
        # overlay bands (under the series, over the gridlines)
        for x0, x1, label, color in self._bands:
            bx0, bx1 = max(x0, x_lo), min(x1, x_hi)
            if bx1 <= bx0:
                continue
            parts.append(
                f'<rect x="{px(bx0):.1f}" y="{self.margin_top}" '
                f'width="{px(bx1) - px(bx0):.1f}" height="{plot_h}" '
                f'fill="{color}" fill-opacity="0.10" stroke="{color}" '
                f'stroke-opacity="0.35" stroke-dasharray="4 3">'
                f"<title>{escape(label)}</title></rect>"
            )
        # axes
        parts.append(
            f'<rect x="{self.margin_left}" y="{self.margin_top}" width="{plot_w}" '
            f'height="{plot_h}" fill="none" stroke="black" stroke-width="1"/>'
        )
        # axis labels
        parts.append(
            f'<text x="{self.margin_left + plot_w / 2}" '
            f'y="{self.height - 12}" text-anchor="middle">{escape(self.x_label)}</text>'
        )
        parts.append(
            f'<text x="18" y="{self.margin_top + plot_h / 2}" text-anchor="middle" '
            f'transform="rotate(-90 18 {self.margin_top + plot_h / 2})">'
            f"{escape(self.y_label)}</text>"
        )
        # series + legend
        for idx, (name, xs, ys) in enumerate(self._series):
            color = _COLORS[idx % len(_COLORS)]
            points = " ".join(f"{px(x):.1f},{py(y):.1f}" for x, y in zip(xs, ys))
            parts.append(
                f'<polyline points="{points}" fill="none" stroke="{color}" '
                f'stroke-width="2"/>'
            )
            for x, y in zip(xs, ys):
                parts.append(
                    f'<circle cx="{px(x):.1f}" cy="{py(y):.1f}" r="3" fill="{color}"/>'
                )
            ly = self.margin_top + 12 + idx * 18
            lx = self.margin_left + 12
            parts.append(
                f'<line x1="{lx}" y1="{ly - 4}" x2="{lx + 22}" y2="{ly - 4}" '
                f'stroke="{color}" stroke-width="2"/>'
            )
            parts.append(f'<text x="{lx + 28}" y="{ly}">{escape(name)}</text>')
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_svg())


@dataclass
class GanttChart:
    """A per-disk I/O timeline rendered to SVG.

    One lane per disk; each completed request becomes a bar from its
    start to finish time, coloured by tag.  This is the picture behind
    the paper's whole argument: the traditional rebuild is one long bar
    on one lane, the shifted rebuild a short burst on every lane.
    """

    title: str
    width: int = 760
    lane_height: int = 26
    margin_left: int = 90
    margin_right: int = 20
    margin_top: int = 40
    margin_bottom: int = 40
    _bars: list[tuple[int, float, float, str]] = field(default_factory=list)

    def add_request(self, disk: int, start: float, finish: float, tag: str = "") -> None:
        if finish < start:
            raise ValueError(f"finish {finish} before start {start}")
        self._bars.append((disk, start, finish, tag))

    @classmethod
    def from_simulation(cls, sim, title: str, tag: str | None = None) -> "GanttChart":
        """Build from a drained :class:`~repro.disksim.events.Simulation`."""
        chart = cls(title)
        for req in sim.completed:
            if tag is None or req.tag == tag:
                chart.add_request(req.disk, req.start_time, req.finish_time, req.tag)
        return chart

    def to_svg(self) -> str:
        if not self._bars:
            raise ValueError("timeline has no requests")
        disks = sorted({d for d, _, _, _ in self._bars})
        tags = sorted({t for _, _, _, t in self._bars})
        color_of = {t: _COLORS[i % len(_COLORS)] for i, t in enumerate(tags)}
        t_max = max(f for _, _, f, _ in self._bars) or 1.0
        plot_w = self.width - self.margin_left - self.margin_right
        height = self.margin_top + len(disks) * self.lane_height + self.margin_bottom

        def px(t: float) -> float:
            return self.margin_left + t / t_max * plot_w

        lane_of = {d: i for i, d in enumerate(disks)}
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{height}" viewBox="0 0 {self.width} {height}" '
            f'font-family="sans-serif" font-size="11">',
            f'<rect width="{self.width}" height="{height}" fill="white"/>',
            f'<text x="{self.width / 2}" y="20" text-anchor="middle" '
            f'font-size="13" font-weight="bold">{escape(self.title)}</text>',
        ]
        for d in disks:
            y = self.margin_top + lane_of[d] * self.lane_height
            parts.append(
                f'<text x="{self.margin_left - 8}" y="{y + self.lane_height * 0.7:.1f}" '
                f'text-anchor="end">disk {d}</text>'
            )
            parts.append(
                f'<line x1="{self.margin_left}" y1="{y + self.lane_height:.1f}" '
                f'x2="{self.margin_left + plot_w}" y2="{y + self.lane_height:.1f}" '
                f'stroke="#eeeeee"/>'
            )
        for d, start, finish, tag in self._bars:
            y = self.margin_top + lane_of[d] * self.lane_height + 3
            x0, x1 = px(start), px(finish)
            parts.append(
                f'<rect x="{x0:.1f}" y="{y:.1f}" width="{max(x1 - x0, 0.8):.1f}" '
                f'height="{self.lane_height - 6}" fill="{color_of[tag]}" '
                f'fill-opacity="0.85"><title>{escape(tag)} '
                f"{start * 1e3:.1f}-{finish * 1e3:.1f} ms</title></rect>"
            )
        # time axis
        axis_y = self.margin_top + len(disks) * self.lane_height + 14
        parts.append(
            f'<text x="{self.margin_left}" y="{axis_y}" text-anchor="start">0 s</text>'
        )
        parts.append(
            f'<text x="{self.margin_left + plot_w}" y="{axis_y}" '
            f'text-anchor="end">{t_max:.2f} s</text>'
        )
        # legend
        for i, t in enumerate(tags):
            lx = self.margin_left + 10 + i * 150
            parts.append(
                f'<rect x="{lx}" y="{24}" width="12" height="10" fill="{color_of[t]}"/>'
            )
            parts.append(f'<text x="{lx + 16}" y="{33}">{escape(t or "(untagged)")}</text>')
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_svg())


# ======================================================================
# figure drivers
# ======================================================================


def render_all(outdir: str, quick: bool = False) -> list[str]:
    """Regenerate Figs. 7, 9 and 10 and write one SVG each.

    Returns the written paths.
    """
    from . import fig7, fig9, fig10

    os.makedirs(outdir, exist_ok=True)
    written: list[str] = []
    n_values = (3, 4, 5) if quick else (3, 4, 5, 6, 7)

    r7 = fig7.run(2, 20 if quick else 50)
    chart = LineChart(
        "Fig. 7: relative read accesses during reconstruction",
        "number of data disks",
        "ratio of avg read accesses (%)",
    )
    chart.add_series("vs traditional mirror+parity", r7.data["n"], r7.data["vs_traditional_percent"])
    chart.add_series("vs RAID 6 (shortened)", r7.data["n"], r7.data["vs_raid6_percent"])
    path = os.path.join(outdir, "fig7.svg")
    chart.save(path)
    written.append(path)

    for run_fn, fname, title in (
        (fig9.run_a, "fig9a.svg", "Fig. 9(a): reconstruction read throughput, mirror"),
        (fig9.run_b, "fig9b.svg", "Fig. 9(b): reconstruction read throughput, mirror+parity"),
    ):
        res = run_fn(n_values)
        chart = LineChart(title, "number of data disks", "read throughput (MB/s)")
        for name, values in res.data.items():
            if name.endswith("(MB/s)"):
                chart.add_series(name.replace(" (MB/s)", ""), res.data["n"], values)
        path = os.path.join(outdir, fname)
        chart.save(path)
        written.append(path)

    for run_fn, fname, title in (
        (fig10.run_a, "fig10a.svg", "Fig. 10(a): write throughput, mirror"),
        (fig10.run_b, "fig10b.svg", "Fig. 10(b): write throughput, mirror+parity"),
    ):
        res = run_fn(n_values, n_ops=60 if quick else 200)
        chart = LineChart(title, "number of data disks", "write throughput (MB/s)")
        for name, values in res.data.items():
            if name.endswith("(MB/s)"):
                chart.add_series(name.replace(" (MB/s)", ""), res.data["n"], values)
        path = os.path.join(outdir, fname)
        chart.save(path)
        written.append(path)

    return written


def render_rebuild_timelines(outdir: str, n: int = 5, n_stripes: int = 6) -> list[str]:
    """Gantt timelines of one rebuild under each arrangement.

    The traditional picture is one saturated lane (the replica disk);
    the shifted picture is every lane of the mirror array lightly
    loaded in parallel — the paper's core idea, made visible.
    """
    from ..core.layouts import shifted_mirror, traditional_mirror
    from ..raidsim.controller import RaidController

    os.makedirs(outdir, exist_ok=True)
    written = []
    for builder, fname, label in (
        (traditional_mirror, "timeline_traditional.svg", "traditional mirror"),
        (shifted_mirror, "timeline_shifted.svg", "shifted mirror"),
    ):
        controller = RaidController(builder(n), n_stripes=n_stripes, payload_bytes=8)
        result = controller.rebuild([0])
        chart = GanttChart.from_simulation(
            controller.array.sim,
            f"Rebuild of data disk 0, {label} (n={n}) — "
            f"{result.read_throughput_mbps:.0f} MB/s",
        )
        path = os.path.join(outdir, fname)
        chart.save(path)
        written.append(path)
    return written
