"""Reconstruction plans and the parallel read-access metric (§III, §IV-B, §V-B).

The paper's central quantity is the **number of read accesses** needed
to fetch everything required to recover the failed elements of one
stripe: thanks to parallel I/O, every disk can deliver one element per
access, so the number of accesses equals the *maximum number of
elements read from any single disk*.

A :class:`ReconstructionPlan` captures, for one stripe and one failure
set:

* ``reads`` — which (disk, row) elements must be fetched;
* ``steps`` — ordered recovery operations producing each lost element
  (copy from a replica, XOR of a parity set, or a full code decode);
* the derived access counts.

Plans are *pure descriptions*: :mod:`repro.raidsim` executes them
against the disk simulator, and :mod:`repro.core.analysis` counts them
symbolically.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = [
    "RecoveryMethod",
    "RecoveryStep",
    "ReconstructionPlan",
    "RebuildPhase",
    "split_into_phases",
    "num_read_accesses",
]


class RecoveryMethod(str, enum.Enum):
    """How one lost element is computed from its sources."""

    COPY = "copy"  # replica copy (mirror family)
    XOR = "xor"  # XOR of the sources (parity row recovery)
    CODE = "code"  # generic erasure decode (RAID 6 baselines)
    RECOMPUTE = "recompute"  # parity regenerated from data sources

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class RecoveryStep:
    """Produce the element at ``target`` from ``sources``.

    ``sources`` entries are ``(disk, row)`` pairs; a source may be the
    target of an *earlier* step in the same plan (e.g. the traditional
    mirror+parity replica-pair failure first rebuilds the data column
    from parity, then copies it to the mirror column without extra
    reads).  Steps are therefore ordered.
    """

    target: tuple[int, int]
    method: RecoveryMethod
    sources: tuple[tuple[int, int], ...]


@dataclass
class ReconstructionPlan:
    """Everything needed to recover one stripe after a disk failure set.

    Attributes
    ----------
    failed_disks:
        The failed global disk ids this plan repairs.
    reads:
        ``disk -> sorted list of rows`` of elements that must be
        physically read from surviving disks.
    steps:
        Ordered recovery operations (see :class:`RecoveryStep`).
    """

    failed_disks: tuple[int, ...]
    reads: dict[int, list[int]] = field(default_factory=dict)
    steps: list[RecoveryStep] = field(default_factory=list)

    # ------------------------------------------------------------------
    def add_read(self, disk: int, row: int) -> None:
        """Require element ``(disk, row)``; duplicates collapse."""
        rows = self.reads.setdefault(disk, [])
        if row not in rows:
            rows.append(row)
            rows.sort()

    def add_step(
        self,
        target: tuple[int, int],
        method: RecoveryMethod,
        sources,
        read_sources: bool = True,
    ) -> None:
        """Append a recovery step, registering source reads by default.

        Sources located on failed disks or produced by earlier steps are
        never read from disk; pass ``read_sources=False`` to suppress
        registration entirely (e.g. when sources were already consumed
        by another step and double-counting is handled by ``add_read``'s
        dedup anyway — the flag exists for sources that are *recovered*
        elements).
        """
        sources = tuple(sources)
        if read_sources:
            produced = {s.target for s in self.steps}
            for disk, row in sources:
                if disk in self.failed_disks or (disk, row) in produced:
                    continue
                self.add_read(disk, row)
        self.steps.append(RecoveryStep(target, method, sources))

    # ------------------------------------------------------------------
    @property
    def num_read_accesses(self) -> int:
        """Max elements read from one disk == parallel read accesses (§III)."""
        if not self.reads:
            return 0
        return max(len(rows) for rows in self.reads.values())

    @property
    def total_elements_read(self) -> int:
        return sum(len(rows) for rows in self.reads.values())

    @property
    def recovered_targets(self) -> list[tuple[int, int]]:
        return [s.target for s in self.steps]

    def reads_per_disk(self) -> dict[int, int]:
        return {disk: len(rows) for disk, rows in self.reads.items()}

    def validate(self, n_disks: int, rows: int) -> None:
        """Internal consistency checks (used heavily by the test suite).

        * no reads from failed disks;
        * every step source is either read, produced earlier, or lost
          forever (which would be a planner bug);
        * indices in range.
        """
        read_set = {(d, r) for d, rs in self.reads.items() for r in rs}
        for disk, rows_ in self.reads.items():
            if disk in self.failed_disks:
                raise AssertionError(f"plan reads from failed disk {disk}")
            if not 0 <= disk < n_disks:
                raise AssertionError(f"disk {disk} out of range")
            for r in rows_:
                if not 0 <= r < rows:
                    raise AssertionError(f"row {r} out of range")
        produced: set[tuple[int, int]] = set()
        for step in self.steps:
            for src in step.sources:
                disk = src[0]
                if disk in self.failed_disks and src not in produced:
                    raise AssertionError(
                        f"step for {step.target} uses unrecovered source {src} on a failed disk"
                    )
                if disk not in self.failed_disks and src not in read_set and src not in produced:
                    raise AssertionError(
                        f"step for {step.target} uses source {src} that is never read"
                    )
            produced.add(step.target)


def num_read_accesses(plan: ReconstructionPlan) -> int:
    """Module-level alias for :attr:`ReconstructionPlan.num_read_accesses`."""
    return plan.num_read_accesses


@dataclass
class RebuildPhase:
    """One failed disk's share of a reconstruction plan.

    Real rebuilds replace one disk at a time (a hot spare per failed
    device), so the executor processes the plan as sequential *phases*,
    one per failed disk.  A phase carries the steps targeting its disk
    plus the reads those steps need that earlier phases did not already
    fetch (sources recovered by earlier phases cost nothing — they are
    in controller memory).
    """

    failed_disk: int
    reads: dict[int, list[int]] = field(default_factory=dict)
    steps: list[RecoveryStep] = field(default_factory=list)

    @property
    def num_read_accesses(self) -> int:
        if not self.reads:
            return 0
        return max(len(rows) for rows in self.reads.values())


def split_into_phases(plan: ReconstructionPlan) -> list[RebuildPhase]:
    """Split a plan into per-failed-disk phases, in target-disk order.

    Phase order follows ``plan.failed_disks`` (ascending), which the
    layout planners arrange so that dependencies only point backwards
    (e.g. a mirror column copied from data recovered via parity in an
    earlier phase).  Reads are deduplicated across phases: a source
    fetched by phase ``k`` is free for phase ``k+1``.
    """
    steps_by_disk: dict[int, list[RecoveryStep]] = {f: [] for f in plan.failed_disks}
    for step in plan.steps:
        disk = step.target[0]
        if disk not in steps_by_disk:
            raise AssertionError(f"plan step targets non-failed disk {disk}")
        steps_by_disk[disk].append(step)

    produced: set[tuple[int, int]] = set()
    fetched: set[tuple[int, int]] = set()
    phases: list[RebuildPhase] = []
    for f in plan.failed_disks:
        phase = RebuildPhase(f)
        for step in steps_by_disk[f]:
            for src in step.sources:
                if src[0] in plan.failed_disks or src in produced or src in fetched:
                    continue
                fetched.add(src)
                rows = phase.reads.setdefault(src[0], [])
                if src[1] not in rows:
                    rows.append(src[1])
                    rows.sort()
            phase.steps.append(step)
            produced.add(step.target)
        phases.append(phase)
    return phases
