"""Unified observability: metrics registry, span tracer, exporters.

The paper's argument is about *where* reconstruction I/O lands; this
package makes that visible at any scale without perturbing the
simulation:

* :mod:`repro.obs.metrics` — ``Counter`` / ``Gauge`` / ``Histogram``
  with labels, a process-wide default registry, and a zero-overhead
  null sink selected by ``REPRO_OBS=0``;
* :mod:`repro.obs.tracing` — span tracer recording ``(name, ts, dur,
  args)`` on per-disk tracks;
* :mod:`repro.obs.export` — chrome://tracing ("Trace Event Format")
  JSON, the incremental streaming JSONL sink, flat JSONL, and metrics
  snapshot round-trip;
* :mod:`repro.obs.http` — live Prometheus text exposition
  (``--metrics-port``) over a stdlib HTTP server;
* :mod:`repro.obs.summary` — the ``repro obs summary`` pretty-printer;
* :mod:`repro.obs.baseline` — rolling quiet-period baselines backing
  the :mod:`repro.nemesis` anomaly detector.

The global hooks — :func:`default_registry` for metrics and
:func:`default_tracer` for spans — are what instrumented components
consult at construction time, so ``repro simulate rebuild --trace-out
trace.json`` needs no plumbing through intermediate layers.  See
``docs/observability.md``.
"""

from __future__ import annotations

from .baseline import EWMABaseline, RollingBaseline, SeasonalBaseline, make_baseline
from .export import (
    JsonlTraceSink,
    StreamedTrace,
    chrome_trace,
    load_metrics,
    load_streaming_trace,
    load_trace_jsonl,
    registry_from_file,
    write_chrome_trace,
    write_metrics,
    write_trace_jsonl,
)
from .http import MetricsServer, prometheus_text
from .metrics import (
    DEFAULT_BUCKETS,
    NULL_INSTRUMENT,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    default_registry,
    obs_enabled,
    scoped_registry,
    set_obs_enabled,
)
from .summary import metrics_summary, summarize_files, trace_summary
from .timeseries import (
    DEFAULT_HORIZON,
    DEFAULT_TS_BUCKETS,
    DEFAULT_WINDOW_S,
    TimelineRecorder,
    TimeSeries,
    default_recorder,
    load_timeseries_jsonl,
    load_timeseries_npz,
    scoped_recorder,
    set_default_recorder,
    window_mean,
    window_quantile,
    write_timeseries_jsonl,
    write_timeseries_npz,
)
from .tracing import (
    DEFAULT_BUFFER_WATERMARK,
    SAMPLED_CATS,
    SpanToken,
    TraceEvent,
    TraceGroup,
    Tracer,
    resolve_sample_rate,
)

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "default_registry",
    "scoped_registry",
    "obs_enabled",
    "set_obs_enabled",
    # tracing
    "Tracer",
    "TraceGroup",
    "TraceEvent",
    "SpanToken",
    "SAMPLED_CATS",
    "DEFAULT_BUFFER_WATERMARK",
    "resolve_sample_rate",
    "default_tracer",
    "set_default_tracer",
    # export
    "chrome_trace",
    "write_chrome_trace",
    "write_trace_jsonl",
    "load_trace_jsonl",
    "JsonlTraceSink",
    "StreamedTrace",
    "load_streaming_trace",
    "write_metrics",
    "load_metrics",
    "registry_from_file",
    # http
    "MetricsServer",
    "prometheus_text",
    # summary
    "metrics_summary",
    "trace_summary",
    "summarize_files",
    # baselines
    "RollingBaseline",
    "EWMABaseline",
    "SeasonalBaseline",
    "make_baseline",
    # timeseries (the simulated-time flight recorder)
    "TimelineRecorder",
    "TimeSeries",
    "DEFAULT_WINDOW_S",
    "DEFAULT_HORIZON",
    "DEFAULT_TS_BUCKETS",
    "default_recorder",
    "set_default_recorder",
    "scoped_recorder",
    "window_mean",
    "window_quantile",
    "write_timeseries_jsonl",
    "load_timeseries_jsonl",
    "write_timeseries_npz",
    "load_timeseries_npz",
]

_default_tracer: Tracer | None = None


def default_tracer() -> Tracer | None:
    """The process default tracer, or ``None`` when tracing is off.

    Simulations attach a track group to this tracer at construction
    when no explicit tracer is passed; the CLI's ``--trace-out`` sets
    it for the duration of one command.
    """
    return _default_tracer


def set_default_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install (or clear, with ``None``) the default tracer; returns the old."""
    global _default_tracer
    old = _default_tracer
    _default_tracer = tracer
    return old
