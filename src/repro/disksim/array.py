"""Element-granular disk array on top of the event engine.

:class:`ElementArray` is the substrate the RAID layer drives: an array
of identical disks addressed in fixed-size *elements* (the paper uses
4 MB).  It provides batch submission, dependency-free barriers and the
strict parallel-round execution mode that realises the paper's
"one element per disk per access" model.
"""

from __future__ import annotations

from typing import Callable

from .disk import DiskParameters
from .events import Simulation
from .request import IOKind, IORequest
from .scheduler import ElevatorScheduler, Scheduler
from .trace import TraceStats, summarize

__all__ = ["ElementArray", "DEFAULT_ELEMENT_SIZE"]

_MB = 1024 * 1024

#: 4 MB, "a typical choice in storage systems" (§VII citing Atropos).
DEFAULT_ELEMENT_SIZE = 4 * _MB


class ElementArray:
    """An array of disks addressed by (disk, element slot).

    Parameters
    ----------
    n_disks:
        Disks in the array (the architecture's global disk count).
    element_size:
        Bytes per element; offset of slot ``k`` is ``k * element_size``.
    params, scheduler_factory:
        Forwarded to the underlying :class:`Simulation`.
    """

    def __init__(
        self,
        n_disks: int,
        element_size: int = DEFAULT_ELEMENT_SIZE,
        params: DiskParameters | None = None,
        scheduler_factory: Callable[[], Scheduler] = ElevatorScheduler,
        faults=None,
    ) -> None:
        if element_size <= 0:
            raise ValueError(f"element size must be positive, got {element_size}")
        self.element_size = element_size
        self.sim = Simulation(
            n_disks, params=params, scheduler_factory=scheduler_factory, faults=faults
        )

    # ------------------------------------------------------------------
    @property
    def n_disks(self) -> int:
        return self.sim.n_disks

    @property
    def now(self) -> float:
        return self.sim.now

    def element_request(
        self,
        disk: int,
        slot: int,
        kind: IOKind,
        n_elements: int = 1,
        priority: int = 10,
        tag: str = "",
    ) -> IORequest:
        """Build a request covering ``n_elements`` contiguous slots."""
        if slot < 0 or n_elements < 1:
            raise ValueError(f"bad element range: slot={slot}, n={n_elements}")
        return IORequest(
            disk=disk,
            offset=slot * self.element_size,
            size=n_elements * self.element_size,
            kind=kind,
            priority=priority,
            tag=tag,
        )

    # ------------------------------------------------------------------
    def submit(self, request: IORequest, callback=None) -> None:
        self.sim.submit(request, callback)

    def submit_elements(
        self,
        ops,
        kind: IOKind,
        priority: int = 10,
        tag: str = "",
        callback=None,
        on_complete=None,
    ) -> list[IORequest]:
        """Submit a batch of single-element operations.

        ``ops`` is an iterable of ``(disk, slot)``.  Contiguous slots on
        the same disk are *coalesced* into one larger request — the I/O
        merging real block layers perform for adjacent element accesses.

        ``callback`` fires per request; ``on_complete`` fires once after
        the whole batch finished (immediately if the batch is empty).
        """
        by_disk: dict[int, list[int]] = {}
        for disk, slot in ops:
            by_disk.setdefault(disk, []).append(slot)
        requests: list[IORequest] = []
        for disk, slots in sorted(by_disk.items()):
            slots = sorted(set(slots))
            run_start = slots[0]
            prev = slots[0]
            for s in slots[1:] + [None]:
                if s is not None and s == prev + 1:
                    prev = s
                    continue
                requests.append(
                    self.element_request(
                        disk,
                        run_start,
                        kind,
                        n_elements=prev - run_start + 1,
                        priority=priority,
                        tag=tag,
                    )
                )
                if s is not None:
                    run_start = s
                    prev = s
        if on_complete is not None:
            if not requests:
                on_complete()
            else:
                remaining = [len(requests)]

                def _group_cb(req, _user_cb=callback):
                    if _user_cb is not None:
                        _user_cb(req)
                    remaining[0] -= 1
                    if remaining[0] == 0:
                        on_complete()

                for r in requests:
                    self.submit(r, _group_cb)
                return requests
        for r in requests:
            self.submit(r, callback)
        return requests

    # ------------------------------------------------------------------
    def run(self, until: float | None = None) -> float:
        """Advance the simulation; returns the clock."""
        return self.sim.run(until)

    def run_rounds(self, rounds, kind: IOKind, tag: str = "") -> float:
        """Strict parallel-round execution (the paper's access model).

        Each round is a list of ``(disk, slot)``; every operation of a
        round is submitted together and the next round starts only when
        all of them completed — one "access" per round.  Returns the
        total elapsed time.
        """
        start = self.sim.now
        for batch in rounds:
            reqs = [self.element_request(d, s, kind, tag=tag) for d, s in batch]
            for r in reqs:
                self.submit(r)
            self.sim.run()
        return self.sim.now - start

    # ------------------------------------------------------------------
    def stats(self, tag: str | None = None) -> TraceStats:
        return summarize(self.sim, tag)

    def park_heads(self) -> None:
        """Reset every disk's head state (between experiment repetitions)."""
        for server in self.sim.disks:
            server.model.reset_position(0)

    @classmethod
    def for_paper_testbed(
        cls, n_disks: int, element_size: int = DEFAULT_ELEMENT_SIZE
    ) -> "ElementArray":
        """Array of Savvio 10K.3 disks, the paper's configuration."""
        return cls(n_disks, element_size, DiskParameters.savvio_10k3())
