"""Disk scrubbing: find and repair latent sector errors before they bite.

The paper's §I cites the latent-sector-error studies [3-6] that
motivated two-fault tolerance; the standard operational complement is
*scrubbing* — periodically reading every sector so an LSE is found
while redundancy still exists, and rewriting it from a replica or the
parity path (the rewrite reallocates the sector and heals it).

:class:`Scrubber` sweeps every disk of a controller's array
sequentially (the cheap, streaming pattern), identifies unreadable
elements, and repairs each from the cheapest surviving source:

1. a replica (mirror family) — one extra read;
2. the parity path — a row read;
3. nothing available → the element is reported unrepairable (and a
   subsequent disk failure would lose it: exactly the §I scenario).

A scrub before rebuild turns the mirror method's LSE data-loss case
into a non-event — measured in ``benchmarks/bench_ablation_scrub.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.layouts import MirrorLayout, MirrorParityLayout, ThreeMirrorLayout
from ..disksim.request import IOKind
from .controller import RaidController

__all__ = ["ScrubReport", "Scrubber"]

_MB = 1024 * 1024


@dataclass(frozen=True)
class ScrubReport:
    """Outcome of one full scrub pass."""

    elements_scanned: int
    errors_found: int
    errors_repaired: int
    unrepairable: tuple[tuple[int, int], ...]
    makespan_s: float
    scan_throughput_mbps: float

    @property
    def clean(self) -> bool:
        return self.errors_found == 0

    @property
    def fully_repaired(self) -> bool:
        return not self.unrepairable


@dataclass
class _Repair:
    cell: tuple[int, int]  # physical (disk, slot)
    source_cells: list[tuple[int, int]] = field(default_factory=list)  # physical


class Scrubber:
    """Full-array scrub over a :class:`RaidController`'s disks."""

    def __init__(self, controller: RaidController) -> None:
        if controller.lse is None:
            raise ValueError(
                "scrubbing needs the controller's LSE model (pass lse= to "
                "RaidController) — with no fault model there is nothing to find"
            )
        self.controller = controller

    # ------------------------------------------------------------------
    def _repair_sources(self, stripe: int, cell: tuple[int, int]) -> list[tuple[int, int]] | None:
        """Surviving logical source cells whose XOR/copy regenerates ``cell``.

        Returns ``None`` when no readable source set exists.
        """
        ctrl = self.controller
        lay = ctrl.layout
        lse = ctrl.lse

        def readable(logical: tuple[int, int]) -> bool:
            pd, slot = ctrl.place(stripe, logical)
            return not lse.is_bad(pd, slot)

        c = lay.content(*cell)
        candidates: list[list[tuple[int, int]]] = []
        if c.kind in ("data", "replica"):
            copies = [lay.data_cell(c.i, c.j)]
            if isinstance(lay, ThreeMirrorLayout):
                copies += [lay.mirror_cell(c.i, c.j, 0), lay.mirror_cell(c.i, c.j, 1)]
            elif isinstance(lay, (MirrorLayout, MirrorParityLayout)):
                copies += lay.replica_cells(c.i, c.j)
            candidates.extend([copy] for copy in copies if copy != cell)
            if isinstance(lay, MirrorParityLayout):
                row = [lay.data_cell(ii, c.j) for ii in range(lay.n) if ii != c.i]
                candidates.append(row + [lay.parity_cell(c.j)])
        elif c.kind == "parity" and isinstance(lay, MirrorParityLayout):
            candidates.append([lay.data_cell(ii, c.j) for ii in range(lay.n)])
            # each data element may be swapped for its replica
        for sources in candidates:
            fixed: list[tuple[int, int]] = []
            ok = True
            for s in sources:
                if readable(s):
                    fixed.append(s)
                    continue
                sc = lay.content(*s)
                swapped = False
                if sc.kind == "data" and isinstance(lay, (MirrorParityLayout, MirrorLayout)):
                    for rep in lay.replica_cells(sc.i, sc.j):
                        if readable(rep):
                            fixed.append(rep)
                            swapped = True
                            break
                if not swapped:
                    ok = False
                    break
            if ok:
                return fixed
        return None

    # ------------------------------------------------------------------
    def run(self, repair: bool = True) -> ScrubReport:
        """One full pass: sweep every disk, then repair what was found."""
        ctrl = self.controller
        lse = ctrl.lse
        n_disks = ctrl.layout.n_disks
        slots = ctrl.n_stripes * ctrl.layout.rows
        start = ctrl.array.now

        # 1) the scan: one streaming read over each disk, all in parallel
        for disk in range(n_disks):
            ctrl.array.submit(
                ctrl.array.element_request(disk, 0, IOKind.READ, n_elements=slots, tag="scrub")
            )
        ctrl.array.run()
        scanned = n_disks * slots

        # 2) classify the damage (the scan surfaces every bad element)
        found = [
            (disk, slot) for disk, slot in sorted(lse.bad_cells()) if disk < n_disks
        ]
        repairs: list[_Repair] = []
        unrepairable: list[tuple[int, int]] = []
        for disk, slot in found:
            stripe = slot // ctrl.layout.rows
            row = slot % ctrl.layout.rows
            logical = (ctrl.stack.logical_disk(stripe, disk), row)
            sources = self._repair_sources(stripe, logical)
            if sources is None:
                unrepairable.append((disk, slot))
            else:
                repairs.append(
                    _Repair((disk, slot), [ctrl.place(stripe, s) for s in sources])
                )

        # 3) repair: read the sources, rewrite the bad element (the write
        #    reallocates the sector, healing it in the fault model)
        if repair:
            for rep in repairs:
                ctrl.array.submit_elements(rep.source_cells, IOKind.READ, tag="scrub-read")
                ctrl.array.submit_elements([rep.cell], IOKind.WRITE, tag="scrub-repair")
            ctrl.array.run()

        makespan = ctrl.array.now - start
        scan_bytes = scanned * ctrl.array.element_size
        return ScrubReport(
            elements_scanned=scanned,
            errors_found=len(found),
            errors_repaired=len(repairs) if repair else 0,
            unrepairable=tuple(unrepairable),
            makespan_s=makespan,
            scan_throughput_mbps=(scan_bytes / _MB / makespan) if makespan > 0 else 0.0,
        )
