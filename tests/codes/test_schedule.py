"""XOR schedules: correctness against the bit-matrix encoder, savings."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes.bitmatrix import CauchyRSCode
from repro.codes.schedule import (
    Schedule,
    XorOp,
    dumb_schedule,
    execute_schedule,
    smart_schedule,
)


def _code_and_data(k=4, m=2, w=4, psize=8, seed=0):
    code = CauchyRSCode(k, m, w)
    rng = np.random.default_rng(seed)
    data = [rng.integers(0, 256, w * psize).astype(np.uint8) for _ in range(k)]
    return code, data


@pytest.mark.parametrize("scheduler", [dumb_schedule, smart_schedule])
@pytest.mark.parametrize("k,m,w", [(3, 2, 4), (4, 2, 8), (5, 3, 4)])
def test_schedule_matches_bitmatrix_encode(scheduler, k, m, w):
    code, data = _code_and_data(k, m, w)
    expected = code.encode(data)
    sched = scheduler(code.coding_bitmatrix, k, m, w)
    got = execute_schedule(sched, data)
    for a, b in zip(got, expected):
        assert np.array_equal(a, b)


def test_dumb_xor_count_equals_ones_minus_outputs():
    code, _ = _code_and_data(4, 2, 8)
    sched = dumb_schedule(code.coding_bitmatrix, 4, 2, 8)
    ones = int(code.coding_bitmatrix.sum())
    assert sched.xor_count == ones - 2 * 8
    assert sched.xor_count == code.encode_xor_count()


def test_smart_never_worse_than_dumb():
    for k, m, w in [(3, 2, 4), (4, 2, 8), (5, 3, 4), (6, 3, 8)]:
        code, _ = _code_and_data(k, m, w)
        dumb = dumb_schedule(code.coding_bitmatrix, k, m, w)
        smart = smart_schedule(code.coding_bitmatrix, k, m, w)
        assert smart.xor_count <= dumb.xor_count, (k, m, w)


def test_smart_actually_saves_on_dense_cauchy():
    """Cauchy matrices over GF(2^8) are dense; row-delta derivation must
    find real savings there (this is the point of the optimisation)."""
    code, _ = _code_and_data(6, 3, 8)
    dumb = dumb_schedule(code.coding_bitmatrix, 6, 3, 8)
    smart = smart_schedule(code.coding_bitmatrix, 6, 3, 8)
    assert smart.xor_count < 0.9 * dumb.xor_count


def test_schedule_on_identity_like_rows():
    """A coding row equal to a single input bit is one copy, no XORs."""
    bits = np.zeros((2, 4), dtype=np.uint8)
    bits[0, 1] = 1
    bits[1, 2] = 1
    sched = dumb_schedule(bits, 2, 1, 2)
    assert sched.xor_count == 0
    assert all(op.copy for op in sched.ops)


def test_all_zero_row_rejected():
    bits = np.zeros((2, 4), dtype=np.uint8)
    bits[0, 0] = 1
    with pytest.raises(ValueError, match="all-zero"):
        dumb_schedule(bits, 2, 1, 2)
    with pytest.raises(ValueError, match="all-zero"):
        smart_schedule(bits, 2, 1, 2)


def test_wrong_matrix_shape_rejected():
    with pytest.raises(ValueError, match="bit matrix"):
        dumb_schedule(np.zeros((3, 4), dtype=np.uint8), 2, 1, 2)


def test_execute_validates_regions():
    code, data = _code_and_data(3, 2, 4)
    sched = dumb_schedule(code.coding_bitmatrix, 3, 2, 4)
    with pytest.raises(ValueError, match="data regions"):
        execute_schedule(sched, data[:2])
    bad = [np.zeros(7, dtype=np.uint8) for _ in range(3)]
    with pytest.raises(ValueError, match="packets"):
        execute_schedule(sched, bad)


def test_execute_rejects_forward_reference():
    sched = Schedule(1, 1, 1, (XorOp((5, 0), (1, 0), copy=True),))
    with pytest.raises(ValueError, match="before it exists"):
        execute_schedule(sched, [np.zeros(4, dtype=np.uint8)])


@given(seed=st.integers(0, 2**31))
@settings(max_examples=20, deadline=None)
def test_smart_schedule_random_content_roundtrip(seed):
    code, data = _code_and_data(4, 2, 4, psize=4, seed=seed)
    sched = smart_schedule(code.coding_bitmatrix, 4, 2, 4)
    assert all(
        np.array_equal(a, b)
        for a, b in zip(execute_schedule(sched, data), code.encode(data))
    )
