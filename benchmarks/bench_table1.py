"""Bench: Table I — failure situations of the shifted mirror with parity.

Regenerates the table by exhaustive enumeration for n = 3..7 and checks
the closed forms (2n / n(n-1) / n^2 cases; 1 / 2 / 2 accesses;
Avg_Read = 4n/(2n+1)).
"""

from __future__ import annotations

from fractions import Fraction

from conftest import run_once

from repro.experiments.table1 import enumerate_table1, run


def test_bench_table1_enumeration(benchmark):
    result = run_once(benchmark, run, (3, 4, 5, 6, 7))
    for n in (3, 4, 5, 6, 7):
        rows = result.data[n]["rows"]
        assert rows["F1"] == (2 * n, 1)
        assert rows["F2"] == (n * (n - 1), 2)
        assert rows["F3"] == (n * n, 2)
        assert result.data[n]["avg_read"] == Fraction(4 * n, 2 * n + 1)
    benchmark.extra_info["avg_read_n7"] = float(result.data[7]["avg_read"])


def test_bench_table1_single_n_enumeration_cost(benchmark):
    """Microbench: plan generation + classification for all 105 pairs."""
    rows = benchmark(enumerate_table1, 7)
    assert sum(c for c, _ in rows.values()) == 105
