"""I/O request objects for the disk simulator."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

__all__ = ["IOKind", "IORequest"]

_next_id = itertools.count()


class IOKind(str, enum.Enum):
    """Read or write."""

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(slots=True)
class IORequest:
    """One disk I/O operation.

    The class is slotted: simulations allocate one of these per I/O,
    and dropping the per-instance ``__dict__`` measurably shrinks both
    allocation time and the resident size of long campaign runs.

    Parameters
    ----------
    disk:
        Target disk id within the array.
    offset:
        Byte offset on the disk.
    size:
        Transfer length in bytes.
    kind:
        Read or write.
    priority:
        Lower values are served first by priority-aware schedulers;
        the on-line reconstruction scenario gives user reads priority 0
        and reconstruction I/O priority 10 (paper §III).
    tag:
        Free-form label used by traces and tests (e.g. ``"rebuild"``,
        ``"user"``).
    """

    disk: int
    offset: int
    size: int
    kind: IOKind
    priority: int = 10
    tag: str = ""
    req_id: int = field(default_factory=lambda: next(_next_id))

    # filled in by the engine
    submit_time: float = 0.0
    start_time: float = 0.0
    finish_time: float = 0.0
    #: set when the request touched an unreadable sector (see
    #: :mod:`repro.disksim.faults`)
    error: bool = False
    #: why the request errored: ``"lse"``, ``"transient"`` or
    #: ``"disk-failed"`` (see :mod:`repro.disksim.faultplan`)
    error_kind: str = ""
    #: 0 for a fresh request, k for its k-th retry (see
    #: :class:`repro.raidsim.controller.RetryPolicy`)
    attempt: int = 0
    #: ``req_id`` of the original request this retry descends from;
    #: ``-1`` for a fresh request.  Fault models key per-operation
    #: state (e.g. a transient's remaining-failure budget) by the
    #: *chain* root, so two independent reads of the same geometry
    #: never share fault state.
    root_id: int = -1

    @property
    def chain_id(self) -> int:
        """Identity of this request's retry chain (its own id if fresh)."""
        return self.req_id if self.root_id < 0 else self.root_id

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError(f"request size must be positive, got {self.size}")
        if self.offset < 0:
            raise ValueError(f"request offset must be >= 0, got {self.offset}")

    @property
    def end(self) -> int:
        """One past the last byte touched."""
        return self.offset + self.size

    @property
    def latency(self) -> float:
        """Submit-to-finish time (valid after completion)."""
        return self.finish_time - self.submit_time

    @property
    def service_duration(self) -> float:
        """Start-to-finish service time (valid after completion)."""
        return self.finish_time - self.start_time
