"""Ablation: rebuild robustness under transient errors and fail-slow disks.

Sweeps the two knobs the fault campaign engine adds — the transient
media-error rate and the fail-slow latency multiplier — over both
arrangements.  The qualitative shape to preserve: makespan grows
monotonically-ish with either knob, every configuration still verifies
(transients are retryable, fail-slow is only slow), and the shifted
arrangement keeps its rebuild advantage while the array is under fire.
"""

from __future__ import annotations

from conftest import run_once

from repro.core.layouts import shifted_mirror, traditional_mirror
from repro.disksim.faultplan import FaultPlan
from repro.raidsim.controller import RaidController

N = 5
STRIPES = 12
TRANSIENT_RATES = (0.0, 0.1, 0.3)
SLOW_MULTIPLIERS = (1.0, 2.0, 4.0)


def _measure(builder, rate, multiplier, seed=2012):
    plan = FaultPlan(seed=seed)
    if rate > 0:
        plan = plan.with_transients(rate=rate)
    if multiplier > 1.0:
        # disk N holds replicas of disk 0 under both arrangements: the
        # whole traditional read stream, a 1/n share of the shifted one
        plan = plan.with_fail_slow(N, multiplier)
    ctrl = RaidController(
        builder(N), n_stripes=STRIPES, payload_bytes=8, fault_plan=plan
    )
    result = ctrl.rebuild([0])
    assert result.verified and not result.aborted
    return result


def test_bench_fault_ablation(benchmark):
    def sweep():
        grid = {}
        for name, builder in (
            ("traditional", traditional_mirror),
            ("shifted", shifted_mirror),
        ):
            for rate in TRANSIENT_RATES:
                for mult in SLOW_MULTIPLIERS:
                    res = _measure(builder, rate, mult)
                    grid[(name, rate, mult)] = res
        return grid

    grid = run_once(benchmark, sweep)

    # fail-slow inflates the makespan monotonically at every rate
    for name in ("traditional", "shifted"):
        for rate in TRANSIENT_RATES:
            spans = [grid[(name, rate, m)].makespan_s for m in SLOW_MULTIPLIERS]
            assert spans == sorted(spans)
            assert spans[-1] > 1.5 * spans[0]
    # transients cost retries and backoff, never data
    for (name, rate, mult), res in grid.items():
        stats = res.fault_stats
        assert stats.data_loss_events == 0
        if rate == 0.0:
            assert stats.retries == 0
        else:
            assert stats.retries > 0 and stats.backoff_time_s > 0
    # the shifted arrangement's advantage survives the worst cell
    worst = (TRANSIENT_RATES[-1], SLOW_MULTIPLIERS[-1])
    assert (
        grid[("shifted", *worst)].makespan_s
        < grid[("traditional", *worst)].makespan_s
    )

    benchmark.extra_info["makespan_s"] = {
        f"{name}/rate={rate}/slow={mult}": res.makespan_s
        for (name, rate, mult), res in grid.items()
    }
    benchmark.extra_info["retries"] = {
        f"{name}/rate={rate}/slow={mult}": res.fault_stats.retries
        for (name, rate, mult), res in grid.items()
    }
