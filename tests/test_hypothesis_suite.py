"""Cross-cutting property-based tests (hypothesis).

These target invariants that span modules — random arrangements through
layouts and plans, random I/O batches through the simulator, random
write workloads through the controller — complementing the per-module
example-based suites.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arrangement import PermutationArrangement
from repro.core.layouts import MirrorLayout, shifted_mirror_parity
from repro.core.planner import schedule_rounds
from repro.core.reconstruction import split_into_phases
from repro.disksim.array import ElementArray
from repro.disksim.disk import DiskParameters
from repro.disksim.request import IOKind
from repro.raidsim.controller import RaidController
from repro.workloads.generator import random_large_writes

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------


@st.composite
def random_arrangement(draw, max_n=5):
    """A uniformly random bijective arrangement."""
    n = draw(st.integers(2, max_n))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    cells = [(i, j) for i in range(n) for j in range(n)]
    perm = rng.permutation(len(cells))
    mapping = {cells[a]: cells[int(b)] for a, b in enumerate(perm)}
    return PermutationArrangement(n, mapping)


# ----------------------------------------------------------------------
# arrangements -> layouts -> plans
# ----------------------------------------------------------------------


@given(arr=random_arrangement())
@settings(max_examples=40, deadline=None)
def test_any_bijective_arrangement_yields_valid_mirror_plans(arr):
    """Whatever the arrangement, single-disk reconstruction plans are
    internally consistent and recover each lost element exactly once."""
    layout = MirrorLayout(arr.n, arr)
    for f in range(layout.n_disks):
        plan = layout.reconstruction_plan([f])
        plan.validate(layout.n_disks, layout.rows)
        targets = [s.target for s in plan.steps]
        assert sorted(targets) == [(f, r) for r in range(layout.rows)]


@given(arr=random_arrangement())
@settings(max_examples=40, deadline=None)
def test_access_count_equals_replica_concentration(arr):
    """The plan's access count for a failed data disk equals the max
    number of its replicas co-located on one mirror disk — the quantity
    the paper minimises."""
    layout = MirrorLayout(arr.n, arr)
    for x in range(arr.n):
        disks = arr.replica_disks_of_data_disk(x)
        concentration = max(disks.count(d) for d in set(disks))
        assert layout.reconstruction_plan([x]).num_read_accesses == concentration


@given(arr=random_arrangement(max_n=4))
@settings(max_examples=25, deadline=None)
def test_any_arrangement_rebuild_verifies_bytes(arr):
    """The controller recovers correct content under any arrangement."""
    ctrl = RaidController(MirrorLayout(arr.n, arr), n_stripes=2, payload_bytes=4)
    for f in (0, arr.n):  # one data disk, one mirror disk
        ctrl2 = RaidController(MirrorLayout(arr.n, arr), n_stripes=2, payload_bytes=4)
        assert ctrl2.rebuild([f]).verified


@given(
    n=st.integers(2, 6),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=40, deadline=None)
def test_parity_double_failure_phase_split_conserves_reads(n, seed):
    rng = np.random.default_rng(seed)
    layout = shifted_mirror_parity(n)
    failed = tuple(sorted(rng.choice(layout.n_disks, size=2, replace=False).tolist()))
    plan = layout.reconstruction_plan(failed)
    phases = split_into_phases(plan)
    phase_reads = {
        (d, r) for p in phases for d, rows in p.reads.items() for r in rows
    }
    plan_reads = {(d, r) for d, rows in plan.reads.items() for r in rows}
    assert phase_reads == plan_reads
    assert [p.failed_disk for p in phases] == list(plan.failed_disks)


# ----------------------------------------------------------------------
# round packing
# ----------------------------------------------------------------------


@given(
    queues=st.dictionaries(
        st.integers(0, 8),
        st.lists(st.integers(0, 30), min_size=0, max_size=6, unique=True),
        max_size=6,
    )
)
@settings(max_examples=60)
def test_round_packing_properties(queues):
    rounds = schedule_rounds(queues)
    expected = max((len(v) for v in queues.values()), default=0)
    assert len(rounds) == expected
    flat = [op for batch in rounds for op in batch]
    want = [(d, r) for d, rows in queues.items() for r in rows]
    assert sorted(flat) == sorted(want)
    for batch in rounds:
        disks = [d for d, _ in batch]
        assert len(disks) == len(set(disks))


# ----------------------------------------------------------------------
# simulator conservation laws
# ----------------------------------------------------------------------


@given(
    seed=st.integers(0, 2**31),
    n_disks=st.integers(1, 5),
    n_ops=st.integers(1, 40),
)
@settings(max_examples=30, deadline=None)
def test_simulator_conservation(seed, n_disks, n_ops):
    rng = np.random.default_rng(seed)
    arr = ElementArray(n_disks, 4 * 1024 * 1024, DiskParameters.savvio_10k3())
    ops = [
        (int(rng.integers(0, n_disks)), int(rng.integers(0, 64)))
        for _ in range(n_ops)
    ]
    kinds = [IOKind.READ if rng.random() < 0.5 else IOKind.WRITE for _ in ops]
    for (d, s), kind in zip(ops, kinds):
        arr.submit(arr.element_request(d, s, kind))
    arr.run()
    stats = arr.stats()
    # every submitted byte is accounted exactly once
    assert stats.bytes_read + stats.bytes_written == n_ops * arr.element_size
    # no disk is busy longer than the run; total busy <= disks * makespan
    assert all(b <= stats.makespan_s + 1e-9 for b in stats.per_disk_busy_s.values())
    assert sum(stats.per_disk_busy_s.values()) <= n_disks * stats.makespan_s + 1e-9
    # the makespan is at least the busiest disk
    assert stats.makespan_s >= max(stats.per_disk_busy_s.values()) - 1e-9
    # latencies are bounded by the makespan
    assert stats.max_latency_s <= stats.makespan_s + 1e-9


@given(seed=st.integers(0, 2**31))
@settings(max_examples=15, deadline=None)
def test_write_workload_always_preserves_redundancy(seed):
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 5))
    ctrl = RaidController(shifted_mirror_parity(n), n_stripes=3, payload_bytes=4)
    ops = random_large_writes(n, 3, n_ops=10, rng=rng)
    strategy = "rmw" if rng.random() < 0.5 else "reconstruct"
    ctrl.run_write_workload(ops, strategy=strategy, window=int(rng.integers(1, 4)), rng=rng)
    assert ctrl.verify_redundancy()


# ----------------------------------------------------------------------
# fault replay determinism (serial and across the fork boundary)
# ----------------------------------------------------------------------


def _plan_fault_events(args) -> tuple:
    """Worker fn: one rebuild under a seeded storm, distilled to events.

    The tuple is the plan's observable *fault event sequence*: the
    makespan plus every robustness counter — if any RNG stream leaked
    or reordered between activations, something here moves.
    """
    n, seed, transient_rate, lse_burst, fail_slow_mult = args
    from dataclasses import asdict

    from repro.core.registry import LAYOUTS
    from repro.raidsim.campaign import default_fault_plan
    from repro.raidsim.controller import RetryPolicy

    layout = LAYOUTS["mirror"](n)
    plan = default_fault_plan(
        layout.n_disks,
        seed=seed,
        transient_rate=transient_rate,
        lse_burst=lse_burst,
        fail_slow_multiplier=fail_slow_mult,
        second_failure_time_s=None,
    )
    ctrl = RaidController(
        layout,
        n_stripes=3,
        payload_bytes=4,
        fault_plan=plan,
        retry_policy=RetryPolicy(max_attempts=4, backoff_base_s=0.01, jitter=0.5),
    )
    res = ctrl.rebuild([0])
    return (res.makespan_s, asdict(ctrl.fault_stats))


def _schedule_wire(args) -> dict:
    """Worker fn: a nemesis schedule's full wire form."""
    n_disks, horizon_s, seed = args
    from repro.nemesis import build_schedule

    return build_schedule(n_disks, horizon_s, seed=seed).to_dict()


@given(
    seed=st.integers(0, 2**31),
    n=st.integers(2, 4),
    rate=st.floats(0.0, 0.5),
    lse=st.integers(0, 6),
    mult=st.floats(1.0, 8.0),
)
@settings(max_examples=12, deadline=None)
def test_fault_plan_replays_identically_when_activated_twice(
    seed, n, rate, lse, mult
):
    args = (n, seed, rate, lse, mult)
    assert _plan_fault_events(args) == _plan_fault_events(args)


@given(seed=st.integers(0, 2**31), n_disks=st.integers(2, 12))
@settings(max_examples=20, deadline=None)
def test_nemesis_schedule_replays_identically_when_drawn_twice(seed, n_disks):
    args = (n_disks, 3 * 86_400.0, seed)
    assert _schedule_wire(args) == _schedule_wire(args)


@given(seed=st.integers(0, 2**31))
@settings(max_examples=3, deadline=None)
def test_fault_replay_is_identical_across_the_worker_pool_boundary(seed):
    """Forked workers reproduce the parent's exact fault event sequence."""
    from repro.parallel import WorkerPool

    plan_args = (3, seed, 0.3, 4, 4.0)
    sched_args = (6, 86_400.0, seed)
    with WorkerPool(jobs=2) as pool:
        remote_plans = pool.map(_plan_fault_events, [plan_args, plan_args])
        remote_sched = pool.map(_schedule_wire, [sched_args])
    assert remote_plans[0] == remote_plans[1] == _plan_fault_events(plan_args)
    assert remote_sched[0] == _schedule_wire(sched_args)


@given(seed=st.integers(0, 2**31))
@settings(max_examples=10, deadline=None)
def test_write_then_fail_then_rebuild_roundtrip(seed):
    """The full lifecycle holds for random workloads and failures."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 5))
    ctrl = RaidController(shifted_mirror_parity(n), n_stripes=3, payload_bytes=4)
    ops = random_large_writes(n, 3, n_ops=8, rng=rng)
    ctrl.run_write_workload(ops, rng=rng)
    failed = sorted(rng.choice(ctrl.layout.n_disks, size=2, replace=False).tolist())
    res = ctrl.rebuild(failed)
    assert res.verified
    assert ctrl.verify_redundancy()


def _openloop_wire(args) -> tuple:
    """Worker fn: an open-loop arrival stream plus its SLO summary wire form."""
    from dataclasses import astuple

    from repro.obs import MetricsRegistry
    from repro.workloads.openloop import (
        DiurnalCurve,
        SLOAccountant,
        TenantSpec,
        open_arrivals,
    )

    n, duration_s, seed, amplitude = args
    tenants = (
        TenantSpec("vod", 25.0, zipf_s=1.1),
        TenantSpec("burst", 8.0, process="bursty"),
    )
    diurnal = DiurnalCurve(amplitude, duration_s) if amplitude > 0 else None
    reads = open_arrivals(n, 6, duration_s, tenants, diurnal=diurnal, seed=seed)
    acc = SLOAccountant(deadline_s=0.05, registry=MetricsRegistry())
    # a deterministic pseudo-service: latency derived from the arrival
    # stream itself, so the summary exercises the whole accounting path
    for k, r in enumerate(reads):
        acc.record((r.time % 0.09) + 0.001 * (k % 7), tenant=r.tenant)
    return tuple(astuple(r) for r in reads), astuple(acc.summary(duration_s))


@given(
    seed=st.integers(0, 2**31),
    n=st.integers(2, 5),
    amplitude=st.floats(0.0, 0.9),
)
@settings(max_examples=10, deadline=None)
def test_open_loop_arrivals_replay_identically(seed, n, amplitude):
    args = (n, 5.0, seed, amplitude)
    assert _openloop_wire(args) == _openloop_wire(args)


@given(seed=st.integers(0, 2**31))
@settings(max_examples=3, deadline=None)
def test_open_loop_streams_are_identical_across_the_worker_pool_boundary(seed):
    """Forked workers produce bit-identical arrivals and SLO summaries."""
    from repro.parallel import WorkerPool

    args = (4, 5.0, seed, 0.5)
    with WorkerPool(jobs=2) as pool:
        remote = pool.map(_openloop_wire, [args, args])
    assert remote[0] == remote[1] == _openloop_wire(args)
