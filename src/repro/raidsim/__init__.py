"""RAID-level simulation: controllers, rebuild drivers, measurements."""

from .availability import (
    AvailabilityPoint,
    average_reconstruction_throughput,
    measure_case,
    reconstruction_series,
)
from .controller import RaidController, RebuildResult, WriteResult
from .degraded import DegradedArray, DegradedStats
from .reconstruction import OnlineReconstruction, OnlineResult, degraded_read_sources
from .scrub import ScrubReport, Scrubber
from .writes import WritePoint, measure_write_throughput, write_series

__all__ = [
    "RaidController",
    "RebuildResult",
    "WriteResult",
    "AvailabilityPoint",
    "measure_case",
    "average_reconstruction_throughput",
    "reconstruction_series",
    "OnlineReconstruction",
    "OnlineResult",
    "degraded_read_sources",
    "Scrubber",
    "ScrubReport",
    "DegradedArray",
    "DegradedStats",
    "WritePoint",
    "measure_write_throughput",
    "write_series",
]
