"""Reliability models: Markov MTTDL closed forms and the rebuild bridge."""

from __future__ import annotations

import pytest

from repro.core.reliability import (
    ReliabilityComparison,
    compare_architectures,
    mttdl_double_fault,
    mttdl_single_fault,
    repair_time_hours,
)

MTTF = 1.0e6  # hours, a typical datasheet figure


# ----------------------------------------------------------------------
# single-fault model
# ----------------------------------------------------------------------


def test_single_fault_matches_classic_approximation():
    """For mu >> lambda, MTTDL ~= MTTF^2 / (n(n-1) * repair)."""
    n, repair = 10, 10.0
    exact = mttdl_single_fault(n, MTTF, repair)
    approx = MTTF**2 / (n * (n - 1) * repair)
    assert exact == pytest.approx(approx, rel=0.01)


def test_single_fault_scales_inverse_with_repair():
    a = mttdl_single_fault(8, MTTF, 20.0)
    b = mttdl_single_fault(8, MTTF, 5.0)
    assert b / a == pytest.approx(4.0, rel=0.01)


def test_single_fault_decreases_with_disks():
    vals = [mttdl_single_fault(n, MTTF, 10.0) for n in (4, 8, 16)]
    assert vals[0] > vals[1] > vals[2]


def test_single_fault_validates_inputs():
    with pytest.raises(ValueError):
        mttdl_single_fault(1, MTTF, 10)
    with pytest.raises(ValueError):
        mttdl_single_fault(4, -1, 10)
    with pytest.raises(ValueError):
        mttdl_single_fault(4, MTTF, 0)


# ----------------------------------------------------------------------
# double-fault model
# ----------------------------------------------------------------------


def test_double_fault_matches_classic_approximation():
    """For mu >> lambda, MTTDL ~= MTTF^3 / (n(n-1)(n-2) repair^2)."""
    n, repair = 11, 10.0
    exact = mttdl_double_fault(n, MTTF, repair)
    approx = MTTF**3 / (n * (n - 1) * (n - 2) * repair**2)
    assert exact == pytest.approx(approx, rel=0.02)


def test_double_fault_scales_inverse_square_with_repair():
    a = mttdl_double_fault(9, MTTF, 20.0)
    b = mttdl_double_fault(9, MTTF, 5.0)
    assert b / a == pytest.approx(16.0, rel=0.02)


def test_double_fault_vastly_exceeds_single_fault():
    assert mttdl_double_fault(10, MTTF, 10.0) > 1e3 * mttdl_single_fault(10, MTTF, 10.0)


def test_double_fault_validates_inputs():
    with pytest.raises(ValueError):
        mttdl_double_fault(2, MTTF, 10)


# ----------------------------------------------------------------------
# rebuild-throughput bridge
# ----------------------------------------------------------------------


def test_repair_time_from_throughput():
    # 300 GB at 100 MiB/s ~= 0.795 h
    hours = repair_time_hours(300e9, 100.0)
    assert hours == pytest.approx(300e9 / (100 * 1024 * 1024) / 3600, rel=1e-9)


def test_repair_time_rejects_nonpositive_throughput():
    with pytest.raises(ValueError):
        repair_time_hours(300e9, 0.0)


def test_comparison_single_fault_gain_tracks_throughput_gain():
    """Mirror method: ~n x faster rebuild -> ~n x the MTTDL."""
    cmp_ = compare_architectures(
        n_disks=10, traditional_mbps=54.8, shifted_mbps=174.0, fault_tolerance=1
    )
    assert isinstance(cmp_, ReliabilityComparison)
    assert cmp_.improvement == pytest.approx(174.0 / 54.8, rel=0.02)


def test_comparison_double_fault_gain_compounds():
    """Mirror+parity: MTTDL ~ 1/repair^2, so the gain is ~ratio^2."""
    ratio = 294.5 / 94.4  # the measured Fig. 9(b) point at n=7
    cmp_ = compare_architectures(
        n_disks=15, traditional_mbps=94.4, shifted_mbps=294.5, fault_tolerance=2
    )
    assert cmp_.improvement == pytest.approx(ratio**2, rel=0.05)


def test_comparison_uses_fig9_measurements_end_to_end():
    """The full bridge: simulate a rebuild, then translate to MTTDL."""
    from repro.core.layouts import shifted_mirror, traditional_mirror
    from repro.raidsim.availability import measure_case

    n = 4
    trad = measure_case(traditional_mirror(n), (0,), n_stripes=8)
    shif = measure_case(shifted_mirror(n), (0,), n_stripes=8)
    cmp_ = compare_architectures(
        n_disks=2 * n,
        traditional_mbps=trad.read_throughput_mbps,
        shifted_mbps=shif.read_throughput_mbps,
        fault_tolerance=1,
    )
    assert cmp_.improvement > 2.0
    assert cmp_.repair_hours_shifted < cmp_.repair_hours_traditional
