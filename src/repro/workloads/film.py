"""Deterministic synthetic element content (the paper's film file).

The authors "encoded a film file and stored 17 GB data on each data
disk" — the content itself only matters for the post-reconstruction
correctness check ("we also compared the original data on the virtual
failed disk and the recovered data").  We substitute a deterministic
pseudo-random payload: every data element's bytes are a pure function
of ``(stripe, data disk, row)``, so any recovered element can be
checked against regeneration without storing 17 GB.

Payloads are deliberately small (default 64 bytes per element): the
*timing* of a 4 MB element is the simulator's business; the *value*
only needs enough entropy to make silent corruption vanishingly
unlikely.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

__all__ = [
    "FilmSource",
    "DEFAULT_PAYLOAD_BYTES",
    "build_film_block",
    "register_shared_film",
    "unregister_shared_film",
    "attach_shared_film",
]

DEFAULT_PAYLOAD_BYTES = 64


@lru_cache(maxsize=131072)
def _element_payload(seed: int, payload_bytes: int, stripe: int, i: int, j: int) -> np.ndarray:
    """Memoised element payload — shared across all equal-seed sources.

    Spinning up a fresh :class:`numpy.random.Generator` costs tens of
    microseconds; a campaign builds many controllers over the *same*
    film, so without the memo content initialisation dominated large
    sweeps.  The cached array is marked read-only: callers copy it into
    their content stores (plain ndarray assignment), never mutate it.
    """
    rng = np.random.default_rng(np.random.SeedSequence([seed, stripe, i, j]))
    payload = rng.integers(0, 256, payload_bytes, dtype=np.uint8)
    payload.setflags(write=False)
    return payload


#: pre-materialised film blocks keyed ``(seed, payload_bytes)`` — a
#: ``(stripes, i, j, payload)`` uint8 array consulted before the
#: per-element generator.  Typically backed by a
#: ``multiprocessing.shared_memory`` buffer exported to pool workers by
#: :class:`repro.parallel.WorkerPool`, so content generation happens
#: once per machine instead of once per process.
_shared_films: dict[tuple[int, int], np.ndarray] = {}
#: worker-side SharedMemory handles, kept alive for the process lifetime
_shared_handles: list = []


def build_film_block(
    seed: int,
    payload_bytes: int,
    n_stripes: int,
    n_i: int,
    n_j: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Materialise a whole film into one ``(stripes, i, j, payload)`` array.

    Every cell is byte-identical to what :meth:`FilmSource.element`
    would generate on demand — this is the content that gets computed
    once and shared, not a different film.
    """
    if out is None:
        out = np.empty((n_stripes, n_i, n_j, payload_bytes), dtype=np.uint8)
    for stripe in range(n_stripes):
        for i in range(n_i):
            for j in range(n_j):
                out[stripe, i, j] = _element_payload(seed, payload_bytes, stripe, i, j)
    return out


def register_shared_film(seed: int, payload_bytes: int, block: np.ndarray) -> None:
    """Serve ``(seed, payload_bytes)`` lookups from a pre-built block.

    Out-of-range coordinates still fall back to the per-element
    generator, so a block sized for one campaign never changes the
    content of a larger one.
    """
    block.setflags(write=False)
    _shared_films[(seed, payload_bytes)] = block


def unregister_shared_film(seed: int, payload_bytes: int) -> None:
    """Drop a registered block (before its backing memory is released)."""
    _shared_films.pop((seed, payload_bytes), None)


def attach_shared_film(
    seed: int, payload_bytes: int, shm_name: str, shape: tuple
) -> None:
    """Worker-side: map an existing shared-memory film block read-only.

    Runs in the pool initializer — the handle is kept alive for the
    process lifetime, so the mapping outlives this call.
    """
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=shm_name)
    _shared_handles.append(shm)
    block = np.ndarray(shape, dtype=np.uint8, buffer=shm.buf)
    register_shared_film(seed, payload_bytes, block)


class FilmSource:
    """Deterministic content generator for data elements.

    Parameters
    ----------
    payload_bytes:
        Bytes of verifiable content per element.
    seed:
        Base seed; two sources with equal seeds generate identical
        "films".
    """

    def __init__(self, payload_bytes: int = DEFAULT_PAYLOAD_BYTES, seed: int = 2012) -> None:
        if payload_bytes < 1:
            raise ValueError(f"payload must be >= 1 byte, got {payload_bytes}")
        self.payload_bytes = payload_bytes
        self.seed = seed

    def element(self, stripe: int, i: int, j: int) -> np.ndarray:
        """The payload of data element ``a[i, j]`` of ``stripe``.

        Served from a registered shared block when one covers the
        coordinates (see :func:`register_shared_film`), otherwise
        generated and memoised per element — the bytes are identical
        either way.  The returned array is read-only; copy before
        mutating (ndarray assignment into a content store copies).
        """
        block = _shared_films.get((self.seed, self.payload_bytes))
        if block is not None and (
            stripe < block.shape[0] and i < block.shape[1] and j < block.shape[2]
        ):
            return block[stripe, i, j]
        return _element_payload(self.seed, self.payload_bytes, stripe, i, j)

    def fresh(self, rng: np.random.Generator) -> np.ndarray:
        """A new payload for an overwriting user write."""
        return rng.integers(0, 256, self.payload_bytes, dtype=np.uint8)
