"""Pretty-printers for exported metrics and traces (``repro obs summary``).

Turns the machine-readable artifacts — a metrics snapshot JSON and/or
a chrome-trace JSON — back into a terminal-friendly digest: counter
totals, gauge values, histogram quantile-ish summaries, and per-track
span accounting (how much rebuild time each spindle carried, which is
the paper's whole argument made visible).
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = ["metrics_summary", "trace_summary", "summarize_files"]

_US_TO_S = 1e-6


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def _label_str(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def metrics_summary(snapshot: dict) -> str:
    """Human-readable digest of a metrics snapshot."""
    lines: list[str] = []
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        lines.append("counters:")
        for name, data in sorted(counters.items()):
            for entry in data["values"]:
                lines.append(
                    f"  {name}{_label_str(entry['labels'])} = "
                    f"{_fmt(entry['value'])}"
                )
    if gauges:
        lines.append("gauges:")
        for name, data in sorted(gauges.items()):
            for entry in data["values"]:
                lines.append(
                    f"  {name}{_label_str(entry['labels'])} = "
                    f"{_fmt(entry['value'])}"
                )
    if histograms:
        lines.append("histograms:")
        for name, data in sorted(histograms.items()):
            for entry in data["values"]:
                count = entry["count"]
                mean = entry["sum"] / count if count else 0.0
                lo = entry["min"] if entry["min"] is not None else 0.0
                hi = entry["max"] if entry["max"] is not None else 0.0
                lines.append(
                    f"  {name}{_label_str(entry['labels'])}: n={count} "
                    f"mean={mean:.6g} min={_fmt(lo)} max={_fmt(hi)}"
                )
    if not lines:
        lines.append("(empty snapshot)")
    return "\n".join(lines)


def trace_summary(trace: dict) -> str:
    """Per-track span accounting of a chrome-trace JSON object."""
    events = trace.get("traceEvents", [])
    names: dict[int, str] = {}
    busy: dict[int, float] = {}
    span_counts: dict[str, int] = {}
    t_min = float("inf")
    t_max = float("-inf")
    n_spans = 0
    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            if ev.get("name") == "process_name":
                names[ev["pid"]] = ev["args"]["name"]
            continue
        if ph != "X":
            continue
        n_spans += 1
        pid = ev.get("pid", 0)
        dur = ev.get("dur", 0.0) * _US_TO_S
        ts = ev.get("ts", 0.0) * _US_TO_S
        busy[pid] = busy.get(pid, 0.0) + dur
        span_counts[ev["name"]] = span_counts.get(ev["name"], 0) + 1
        t_min = min(t_min, ts)
        t_max = max(t_max, ts + dur)
    if n_spans == 0:
        return "(no spans)"
    makespan = t_max - t_min
    lines = [f"{n_spans} spans over {makespan * 1e3:.1f} ms"]
    lines.append("spans by name:")
    for name, count in sorted(span_counts.items(), key=lambda kv: -kv[1]):
        lines.append(f"  {name:<24} {count}")
    lines.append("busy time by track:")
    for pid in sorted(busy):
        label = names.get(pid, f"pid {pid}")
        util = busy[pid] / makespan if makespan > 0 else 0.0
        lines.append(
            f"  {label:<32} {busy[pid] * 1e3:>9.1f} ms  ({util:5.1%})"
        )
    return "\n".join(lines)


def _load_trace_file(path) -> dict:
    """A chrome-trace object from either export format.

    End-of-run ``--trace-out foo.json`` files are one JSON object;
    streaming ``foo.jsonl`` files are line-delimited (and possibly
    torn by an abrupt stop) — those go through the tolerant
    streaming loader and are re-framed.
    """
    try:
        return json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError:
        from .export import load_streaming_trace

        return load_streaming_trace(path).to_chrome()


def summarize_files(metrics_path=None, trace_path=None) -> str:
    """Digest of the given artifact files (either may be omitted)."""
    parts: list[str] = []
    if metrics_path is not None:
        snap = json.loads(Path(metrics_path).read_text(encoding="utf-8"))
        parts.append(f"== metrics: {metrics_path} ==")
        parts.append(metrics_summary(snap))
    if trace_path is not None:
        trace = _load_trace_file(trace_path)
        parts.append(f"== trace: {trace_path} ==")
        sample = trace.get("metadata", {}).get("sample_rate", 1.0)
        parts.append(trace_summary(trace))
        if sample < 1.0:
            parts.append(f"(per-request spans sampled at rate {sample:g})")
    if not parts:
        return "nothing to summarize (pass --metrics and/or --trace)"
    return "\n".join(parts)
