"""Event-driven disk and disk-array simulator (the hardware substrate).

The paper evaluated on a 16-disk SAS array of Seagate Savvio 10K.3
drives; we substitute this simulator, calibrated to the drive figures
printed in §VII (54.8 MB/s peak read, 130 MB/s peak write, 10 krpm,
16 MB cache).  See DESIGN.md §2 for the substitution argument.
"""

from .array import DEFAULT_ELEMENT_SIZE, ElementArray
from .calendar import EVENT_DTYPE, OP_CALL, OP_COMPLETE, TypedCalendar
from .disk import DiskModel, DiskParameters
from .events import Simulation
from .faultplan import (
    ActiveFaults,
    DiskFailure,
    FailSlow,
    FaultPlan,
    InjectionCounters,
    TransientFaults,
)
from .faults import LatentSectorErrors
from .request import IOKind, IORequest
from .scheduler import ElevatorScheduler, FIFOScheduler, PriorityScheduler, Scheduler
from .trace import TraceStats, read_throughput_mbps, summarize, write_throughput_mbps

__all__ = [
    "DiskParameters",
    "DiskModel",
    "IOKind",
    "IORequest",
    "Scheduler",
    "FIFOScheduler",
    "ElevatorScheduler",
    "PriorityScheduler",
    "Simulation",
    "TypedCalendar",
    "EVENT_DTYPE",
    "OP_CALL",
    "OP_COMPLETE",
    "LatentSectorErrors",
    "FaultPlan",
    "TransientFaults",
    "FailSlow",
    "DiskFailure",
    "ActiveFaults",
    "InjectionCounters",
    "ElementArray",
    "DEFAULT_ELEMENT_SIZE",
    "TraceStats",
    "summarize",
    "read_throughput_mbps",
    "write_throughput_mbps",
]
