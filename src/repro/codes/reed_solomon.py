"""Systematic Reed-Solomon erasure coding (Jerasure's "matrix coding").

An ``RSCode(k, m, w)`` stripes data across ``k`` data devices and ``m``
coding devices and tolerates any ``m`` simultaneous device erasures
(an MDS code).  Encoding multiplies the data vector by the bottom ``m``
rows of a systematic distribution matrix; decoding inverts the ``k x k``
matrix formed from any ``k`` surviving rows.

This is the general-purpose code of the substrate.  The specific RAID 6
baselines the paper compares against (EVENODD, RDP) live in their own
modules; RAID 5 single parity is :mod:`repro.codes.xor_code`.
"""

from __future__ import annotations

import numpy as np

from .galois import GF
from .matrix import invert, matvec_regions, rs_distribution_matrix

__all__ = ["RSCode"]


class RSCode:
    """Systematic Reed-Solomon code over GF(2^w).

    Parameters
    ----------
    k:
        Number of data devices.
    m:
        Number of coding devices (erasure tolerance).
    w:
        Field word size; ``k + m`` must not exceed ``2**w``.

    Notes
    -----
    Regions handed to :meth:`encode` / :meth:`decode` are 1-D uint8
    buffers of equal length; for ``w == 16`` the byte length must be
    even (regions are viewed as uint16 words internally).
    """

    def __init__(self, k: int, m: int, w: int = 8) -> None:
        if k < 1 or m < 1:
            raise ValueError(f"need k >= 1 and m >= 1, got k={k}, m={m}")
        self.k = k
        self.m = m
        self.gf = GF(w)
        if k + m > self.gf.size:
            raise ValueError(f"k+m = {k + m} exceeds field size 2^{w}")
        self.distribution = rs_distribution_matrix(k, m, self.gf)
        #: bottom m rows: the generator of the coding devices
        self.coding_matrix = self.distribution[k:]

    # ------------------------------------------------------------------
    def _to_words(self, region: np.ndarray) -> np.ndarray:
        region = np.ascontiguousarray(region, dtype=np.uint8)
        if self.gf.w == 16:
            if region.nbytes % 2:
                raise ValueError("region byte length must be even for w=16")
            return region.view(np.uint16)
        return region

    def _to_bytes(self, words: np.ndarray) -> np.ndarray:
        if self.gf.w == 16:
            return words.view(np.uint8)
        return words.astype(np.uint8, copy=False)

    # ------------------------------------------------------------------
    def encode(self, data_regions: list[np.ndarray]) -> list[np.ndarray]:
        """Compute the ``m`` coding regions for ``k`` data regions."""
        if len(data_regions) != self.k:
            raise ValueError(f"expected {self.k} data regions, got {len(data_regions)}")
        words = [self._to_words(r) for r in data_regions]
        lengths = {w_.nbytes for w_ in words}
        if len(lengths) != 1:
            raise ValueError("all data regions must have equal length")
        coded = matvec_regions(self.coding_matrix, words, self.gf)
        return [self._to_bytes(c) for c in coded]

    def decode(
        self,
        regions: list[np.ndarray | None],
    ) -> list[np.ndarray]:
        """Recover all ``k`` data regions from survivors.

        Parameters
        ----------
        regions:
            Length ``k + m`` list ordered data-then-coding; erased
            devices are ``None``.  At least ``k`` entries must survive.

        Returns
        -------
        list of numpy.ndarray
            The ``k`` data regions, reconstructed where erased.
        """
        if len(regions) != self.k + self.m:
            raise ValueError(f"expected {self.k + self.m} region slots, got {len(regions)}")
        erased = [i for i, r in enumerate(regions) if r is None]
        if len(erased) > self.m:
            raise ValueError(f"{len(erased)} erasures exceed tolerance m={self.m}")
        surviving = [i for i, r in enumerate(regions) if r is not None]

        # Fast path: all data devices intact.
        if all(i >= self.k or regions[i] is not None for i in range(self.k + self.m)) and not any(
            i < self.k for i in erased
        ):
            return [np.asarray(regions[i], dtype=np.uint8) for i in range(self.k)]

        rows = surviving[: self.k]
        submatrix = self.distribution[rows]
        inverse = invert(submatrix, self.gf)
        words = [self._to_words(regions[i]) for i in rows]
        data = matvec_regions(inverse, words, self.gf)
        return [self._to_bytes(d) for d in data]

    def decode_all(self, regions: list[np.ndarray | None]) -> list[np.ndarray]:
        """Recover every device (data and coding) from survivors."""
        data = self.decode(regions)
        coding = self.encode(data)
        return data + coding

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RSCode(k={self.k}, m={self.m}, w={self.gf.w})"
