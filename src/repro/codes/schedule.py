"""XOR schedules: turning bit matrices into explicit XOR programs.

Jerasure's bit-matrix engine does not multiply at coding time — it
*schedules*: a coding operation becomes a list of ``(src, dst)`` packet
XORs executed in order.  Two classic schedulers:

* **dumb** — each output packet is built independently: one copy plus
  one XOR per remaining set bit of its matrix row;
* **smart** — outputs may also be *derived from each other*: if a
  pending row differs from an already-computed one in fewer bits than
  its own popcount, copy that output and XOR the difference (Jerasure's
  ``jerasure_smart_bitmatrix_to_schedule``; Plank, Simmerman, Schuman,
  2008).  Dense generator matrices (Cauchy!) often shrink by 2x or
  more, which is why CRS papers optimise ones counts.

Schedules are data: :func:`execute_schedule` runs one against packet
arrays, and :func:`schedule_xor_count` prices it — tested to agree with
direct encoding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "XorOp",
    "Schedule",
    "dumb_schedule",
    "smart_schedule",
    "execute_schedule",
    "schedule_xor_count",
]


@dataclass(frozen=True)
class XorOp:
    """One scheduled operation on packets.

    ``dst op= src`` where packets are addressed ``(device, packet)``;
    devices ``0..k-1`` are inputs, ``k..k+m-1`` outputs.  ``copy`` makes
    the op an assignment instead of an XOR (each destination's first
    touch).
    """

    src: tuple[int, int]
    dst: tuple[int, int]
    copy: bool = False


@dataclass(frozen=True)
class Schedule:
    """An ordered XOR program realising a coding bit matrix."""

    k: int
    m: int
    w: int
    ops: tuple[XorOp, ...]

    @property
    def xor_count(self) -> int:
        """Pure XORs (copies are free-ish: a memcpy, not an add)."""
        return sum(1 for op in self.ops if not op.copy)


def _rows_of(bitmatrix: np.ndarray, k: int, m: int, w: int) -> np.ndarray:
    bitmatrix = np.asarray(bitmatrix, dtype=np.uint8)
    if bitmatrix.shape != (m * w, k * w):
        raise ValueError(
            f"coding bit matrix must be ({m * w}, {k * w}), got {bitmatrix.shape}"
        )
    return bitmatrix


def dumb_schedule(bitmatrix: np.ndarray, k: int, m: int, w: int) -> Schedule:
    """One copy + popcount-1 XORs per output packet, no sharing."""
    bits = _rows_of(bitmatrix, k, m, w)
    ops: list[XorOp] = []
    for out_row in range(m * w):
        dst = (k + out_row // w, out_row % w)
        first = True
        for col in np.nonzero(bits[out_row])[0]:
            src = (int(col) // w, int(col) % w)
            ops.append(XorOp(src, dst, copy=first))
            first = False
        if first:
            raise ValueError(f"coding row {out_row} is all-zero; matrix is degenerate")
    return Schedule(k, m, w, tuple(ops))


def smart_schedule(bitmatrix: np.ndarray, k: int, m: int, w: int) -> Schedule:
    """Derive outputs from earlier outputs when the delta is cheaper.

    For each output row (in order), compare its bit row against every
    already-computed output's row: if some XOR-difference has fewer set
    bits than the row's own popcount, start from that output (one copy)
    and apply the difference.  Greedy, like Jerasure's implementation.
    """
    bits = _rows_of(bitmatrix, k, m, w)
    ops: list[XorOp] = []
    done: list[tuple[int, np.ndarray]] = []  # (output row index, its bit row)
    for out_row in range(m * w):
        dst = (k + out_row // w, out_row % w)
        row = bits[out_row]
        own_cost = int(row.sum())
        if own_cost == 0:
            raise ValueError(f"coding row {out_row} is all-zero; matrix is degenerate")
        best_base: int | None = None
        best_delta: np.ndarray | None = None
        best_cost = own_cost  # copy+ (own_cost - 1) XOR vs copy + delta XORs
        for base_row, base_bits in done:
            delta = row ^ base_bits
            cost = int(delta.sum()) + 1  # the base copy counts like a first bit
            if cost < best_cost:
                best_cost = cost
                best_base = base_row
                best_delta = delta
        if best_base is None:
            first = True
            for col in np.nonzero(row)[0]:
                ops.append(XorOp((int(col) // w, int(col) % w), dst, copy=first))
                first = False
        else:
            ops.append(
                XorOp((k + best_base // w, best_base % w), dst, copy=True)
            )
            for col in np.nonzero(best_delta)[0]:
                ops.append(XorOp((int(col) // w, int(col) % w), dst))
        done.append((out_row, row))
    return Schedule(k, m, w, tuple(ops))


def execute_schedule(schedule: Schedule, data_regions: list[np.ndarray]) -> list[np.ndarray]:
    """Run a schedule over ``k`` data regions; returns the ``m`` outputs.

    Regions are byte arrays divisible into ``w`` packets, exactly as in
    :class:`repro.codes.bitmatrix.BitMatrixCode`.
    """
    if len(data_regions) != schedule.k:
        raise ValueError(f"expected {schedule.k} data regions, got {len(data_regions)}")
    w = schedule.w
    packets: dict[tuple[int, int], np.ndarray] = {}
    psize: int | None = None
    for dev, region in enumerate(data_regions):
        region = np.ascontiguousarray(region, dtype=np.uint8)
        if region.size % w:
            raise ValueError(
                f"region of {region.size} bytes not divisible into {w} packets"
            )
        view = region.reshape(w, -1)
        if psize is None:
            psize = view.shape[1]
        elif view.shape[1] != psize:
            raise ValueError("all data regions must have equal length")
        for p in range(w):
            packets[(dev, p)] = view[p]
    for op in schedule.ops:
        if op.src not in packets:
            raise ValueError(f"schedule reads {op.src} before it exists")
        if op.copy:
            packets[op.dst] = packets[op.src].copy()
        else:
            packets[op.dst] = packets[op.dst] ^ packets[op.src]
    out = []
    for dev in range(schedule.k, schedule.k + schedule.m):
        cols = [packets[(dev, p)] for p in range(w)]
        out.append(np.concatenate(cols))
    return out


def schedule_xor_count(schedule: Schedule) -> int:
    """Module-level alias for :attr:`Schedule.xor_count`."""
    return schedule.xor_count
