"""Nemesis scheduler: determinism, orthogonal knobs, the safety budget."""

from __future__ import annotations

import pytest

from repro.nemesis import FAULT_KINDS, HazardRates, build_schedule

WEEK_S = 7 * 86_400.0


# ----------------------------------------------------------------------
# validation
# ----------------------------------------------------------------------


def test_build_schedule_validates_arguments():
    with pytest.raises(ValueError, match="n_disks"):
        build_schedule(0, WEEK_S)
    with pytest.raises(ValueError, match="horizon_s"):
        build_schedule(8, 0.0)
    with pytest.raises(ValueError, match="safety_budget"):
        build_schedule(8, WEEK_S, safety_budget=-1)


def test_hazard_rates_validation():
    with pytest.raises(ValueError, match="disk_death_per_day"):
        HazardRates(disk_death_per_day=-0.1)
    with pytest.raises(ValueError, match="fail_slow_duration_s"):
        HazardRates(fail_slow_duration_s=(100.0, 50.0))
    with pytest.raises(ValueError, match="multipliers must be >= 1"):
        HazardRates(fail_slow_multiplier=(0.5, 2.0))
    with pytest.raises(ValueError, match="probabilities"):
        HazardRates(burst_rate=(0.2, 1.5))
    with pytest.raises(ValueError, match="lse_storm_size"):
        HazardRates(lse_storm_size=(0, 3))
    with pytest.raises(ValueError, match="positive"):
        HazardRates(repair_s=0.0)


def test_of_kind_rejects_unknown_kind():
    sched = build_schedule(8, WEEK_S, seed=1)
    with pytest.raises(ValueError, match="unknown fault kind"):
        sched.of_kind("gamma-ray")


# ----------------------------------------------------------------------
# determinism and knob orthogonality
# ----------------------------------------------------------------------


def test_schedule_is_a_pure_function_of_its_arguments():
    a = build_schedule(8, WEEK_S, seed=2012)
    b = build_schedule(8, WEEK_S, seed=2012)
    assert a.to_dict() == b.to_dict()


def test_different_seeds_draw_different_storms():
    a = build_schedule(8, WEEK_S, seed=1)
    b = build_schedule(8, WEEK_S, seed=2)
    assert a.to_dict() != b.to_dict()


def test_rate_knobs_are_orthogonal_across_classes():
    """Raising one class's rate must not move another class's arrivals."""
    base = build_schedule(8, WEEK_S, seed=5)
    cranked = build_schedule(
        8, WEEK_S, seed=5, rates=HazardRates(fail_slow_per_day=6.0)
    )
    key = lambda f: (f.kind, f.disk, f.start_s, f.end_s, f.magnitude)  # noqa: E731
    for kind in ("disk-death", "transient-burst", "lse-storm"):
        assert [key(f) for f in base.of_kind(kind)] == [
            key(f) for f in cranked.of_kind(kind)
        ]
    assert len(cranked.of_kind("fail-slow")) > len(base.of_kind("fail-slow"))


def test_zero_rate_disables_a_class():
    sched = build_schedule(
        8,
        WEEK_S,
        seed=3,
        rates=HazardRates(lse_storm_per_day=0.0, disk_death_per_day=0.0),
    )
    assert sched.of_kind("lse-storm") == ()
    assert sched.of_kind("disk-death") == ()
    assert sched.dropped_deaths == 0


def test_faults_are_time_sorted_with_sequential_ids():
    sched = build_schedule(8, WEEK_S, seed=9)
    assert [f.fault_id for f in sched.faults] == list(range(len(sched)))
    starts = [f.start_s for f in sched.faults]
    assert starts == sorted(starts)
    assert all(0.0 <= f.start_s < WEEK_S for f in sched.faults)
    assert all(f.end_s > f.start_s for f in sched.faults)


def test_magnitudes_stay_inside_their_configured_ranges():
    rates = HazardRates(
        fail_slow_per_day=4.0, transient_burst_per_day=4.0, lse_storm_per_day=4.0
    )
    sched = build_schedule(8, WEEK_S, seed=11, rates=rates)
    for f in sched.of_kind("fail-slow"):
        assert rates.fail_slow_multiplier[0] <= f.magnitude <= rates.fail_slow_multiplier[1]
        assert 0 <= f.disk < 8
    for f in sched.of_kind("transient-burst"):
        assert rates.burst_rate[0] <= f.magnitude <= rates.burst_rate[1]
        assert f.disk == -1
    for f in sched.of_kind("lse-storm"):
        assert rates.lse_storm_size[0] <= f.magnitude <= rates.lse_storm_size[1]
        assert float(f.magnitude).is_integer()


# ----------------------------------------------------------------------
# the safety budget
# ----------------------------------------------------------------------


def _max_concurrent_deaths(sched):
    deaths = sched.of_kind("disk-death")
    return max(
        (sum(1 for d in deaths if d.active_at(f.start_s)) for f in deaths),
        default=0,
    )


def test_safety_budget_caps_concurrent_deaths():
    rates = HazardRates(disk_death_per_day=20.0)  # hammer it
    sched = build_schedule(8, WEEK_S, seed=7, rates=rates, safety_budget=1)
    assert _max_concurrent_deaths(sched) <= 1
    assert sched.dropped_deaths > 0
    sched2 = build_schedule(8, WEEK_S, seed=7, rates=rates, safety_budget=2)
    assert _max_concurrent_deaths(sched2) <= 2


def test_allow_excess_lifts_the_budget_but_never_rekills_a_dead_disk():
    rates = HazardRates(disk_death_per_day=20.0)
    sched = build_schedule(
        8, WEEK_S, seed=7, rates=rates, safety_budget=1, allow_excess=True
    )
    assert _max_concurrent_deaths(sched) > 1
    # while a disk is under repair it must not be drawn dead again
    deaths = sched.of_kind("disk-death")
    for f in deaths:
        overlapping_same_disk = [
            d
            for d in deaths
            if d is not f and d.disk == f.disk and d.overlaps(f.start_s, f.end_s)
        ]
        assert overlapping_same_disk == []


def test_active_at_reflects_fault_windows():
    sched = build_schedule(8, WEEK_S, seed=13)
    assert len(sched) > 0
    f = sched.faults[0]
    assert f in sched.active_at(f.start_s)
    assert f not in sched.active_at(f.end_s)


def test_to_dict_is_schema_versioned():
    sched = build_schedule(8, WEEK_S, seed=1)
    d = sched.to_dict()
    assert d["schema_version"] == 1
    assert d["n_disks"] == 8
    assert len(d["faults"]) == len(sched)
    assert set(f["kind"] for f in d["faults"]) <= set(FAULT_KINDS)
