"""Metric excursions and their attribution to active faults.

The :class:`AnomalyDetector` watches a handful of campaign metrics
(user latency, read throughput, availability, rebuild progress), keeps
a quiet-period :class:`~repro.obs.baseline.RollingBaseline` per metric,
and flags samples that excurse past the combined relative/z-score
thresholds.  Every excursion is immediately **correlated against the
active-fault timeline**: the fault intervals covering the sample time
(padded by ``margin_s``, since a fault's queueing after-effects outlive
the fault itself) become the excursion's attribution set.

The campaign-level invariant is one-directional: *every excursion must
overlap at least one active fault*.  Faults are allowed to pass
unnoticed (a fail-slow on an idle disk hurts nobody); an excursion with
an empty attribution set means the detector saw the engine misbehave
while nothing was injected — exactly the kind of latent bug a nemesis
daemon exists to surface — and fails the campaign.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..obs import default_registry, make_baseline
from ..obs.baseline import BASELINE_KINDS
from .tracker import FaultTimeline

__all__ = [
    "MetricSpec",
    "Excursion",
    "AttributionReport",
    "AnomalyDetector",
    "DEFAULT_METRICS",
]


@dataclass(frozen=True)
class MetricSpec:
    """How one metric is baselined and judged.

    ``direction`` names the bad side: ``"high"`` for latency-like
    series, ``"low"`` for throughput-like ones.  ``baseline`` selects
    the estimator (see :func:`repro.obs.baseline.make_baseline`):
    ``"rolling"`` re-centres fast, ``"ewma"`` (knob: ``ewma_alpha``)
    keeps long memory so slow drifts still flag, ``"seasonal"`` (knobs:
    ``period_s``/``n_phases``) judges each phase of a periodic signal
    against its own history.
    """

    name: str
    direction: str = "high"
    rel_threshold: float = 0.5
    z_threshold: float = 4.0
    window: int = 64
    min_samples: int = 6
    baseline: str = "rolling"
    ewma_alpha: float = 0.05
    period_s: float = 86_400.0
    n_phases: int = 24

    def __post_init__(self) -> None:
        if self.direction not in ("high", "low"):
            raise ValueError(f"direction must be 'high'/'low', got {self.direction!r}")
        if self.rel_threshold <= 0:
            raise ValueError("rel_threshold must be positive")
        if self.baseline not in BASELINE_KINDS:
            raise ValueError(
                f"baseline must be one of {BASELINE_KINDS}, got {self.baseline!r}"
            )

    def make_baseline(self):
        """Build this spec's baseline estimator."""
        return make_baseline(
            self.baseline,
            window=self.window,
            min_samples=self.min_samples,
            alpha=self.ewma_alpha,
            period_s=self.period_s,
            n_phases=self.n_phases,
        )


#: the campaign's stock watchlist
DEFAULT_METRICS = (
    MetricSpec("user_latency_s", direction="high"),
    MetricSpec("read_throughput_rps", direction="low"),
    MetricSpec("unavailability", direction="high", min_samples=2),
)


@dataclass(frozen=True)
class Excursion:
    """One flagged sample, with its attribution set."""

    t_s: float
    metric: str
    value: float
    baseline_mean: float
    baseline_std: float
    #: fault ids of timeline intervals overlapping the sample
    attributed_to: tuple[int, ...]
    #: fault kinds of those intervals, for humans
    attributed_kinds: tuple[str, ...] = ()

    @property
    def explained(self) -> bool:
        return bool(self.attributed_to)

    def to_dict(self) -> dict:
        return {
            "t_s": self.t_s,
            "metric": self.metric,
            "value": self.value,
            "baseline_mean": self.baseline_mean,
            "baseline_std": self.baseline_std,
            "attributed_to": list(self.attributed_to),
            "attributed_kinds": list(self.attributed_kinds),
            "explained": self.explained,
        }


@dataclass(frozen=True)
class AttributionReport:
    """The detector's verdict over one campaign."""

    n_samples: int
    n_quiet_samples: int
    excursions: tuple[Excursion, ...] = ()

    @property
    def n_excursions(self) -> int:
        return len(self.excursions)

    @property
    def unexplained(self) -> tuple[Excursion, ...]:
        return tuple(e for e in self.excursions if not e.explained)

    @property
    def attribution_coverage(self) -> float:
        """Fraction of excursions overlapping an active fault (1.0 if none)."""
        if not self.excursions:
            return 1.0
        return 1.0 - len(self.unexplained) / len(self.excursions)

    def assert_invariant(self) -> None:
        """Raise if any excursion lacks an active-fault overlap."""
        bad = self.unexplained
        if bad:
            lines = ", ".join(
                f"{e.metric}={e.value:.4g}@t={e.t_s:.0f}s" for e in bad[:5]
            )
            raise AssertionError(
                f"{len(bad)} excursion(s) overlap no active fault: {lines}"
            )

    def to_dict(self) -> dict:
        return {
            "n_samples": self.n_samples,
            "n_quiet_samples": self.n_quiet_samples,
            "n_excursions": self.n_excursions,
            "n_unexplained": len(self.unexplained),
            "attribution_coverage": self.attribution_coverage,
            "excursions": [e.to_dict() for e in self.excursions],
        }


class AnomalyDetector:
    """Rolling-baseline excursion detection with fault attribution.

    Feed it ``(t, metric, value)`` samples via :meth:`observe`; quiet
    samples (no fault active, no excursion flagged) grow the baselines,
    so a fault can never normalise its own damage.  ``margin_s`` pads
    the attribution window: queues drain *after* a fault deactivates,
    so an excursion shortly past an interval's end still attributes.
    """

    def __init__(
        self,
        timeline: FaultTimeline,
        metrics: tuple[MetricSpec, ...] = DEFAULT_METRICS,
        margin_s: float = 0.0,
        registry=None,
    ) -> None:
        self.timeline = timeline
        self.margin_s = margin_s
        self._specs = {m.name: m for m in metrics}
        self._baselines = {m.name: m.make_baseline() for m in metrics}
        self._excursions: list[Excursion] = []
        self._n_samples = 0
        self._n_quiet = 0
        reg = registry if registry is not None else default_registry()
        self._obs_excursions = reg.counter(
            "nemesis.excursions_total", "flagged metric excursions"
        )
        self._obs_unexplained = reg.counter(
            "nemesis.unexplained_excursions_total",
            "excursions overlapping no active fault (invariant violations)",
        )

    def watch(self, spec: MetricSpec) -> None:
        """Add a metric to the watchlist (before its first sample)."""
        if spec.name in self._specs:
            raise ValueError(f"metric {spec.name!r} already watched")
        self._specs[spec.name] = spec
        self._baselines[spec.name] = spec.make_baseline()

    def observe(
        self, t_s: float, metric: str, value: float, quiet: bool | None = None
    ) -> Excursion | None:
        """Judge one sample; returns the excursion if one was flagged.

        ``quiet`` overrides the is-anything-active test that gates
        baseline growth — e.g. rebuild progress is baselined against
        other rebuilds, for which "quiet" means "nothing active *but*
        the death under repair".  Attribution always uses the real
        active set.
        """
        spec = self._specs.get(metric)
        if spec is None:
            raise ValueError(f"metric {metric!r} is not on the watchlist")
        baseline = self._baselines[metric]
        self._n_samples += 1
        if math.isnan(value):
            # zero-sample aggregates are NaN by contract ("nothing was
            # measured"): abstain — not an excursion, never baseline food
            return None
        active = self.timeline.active_at(t_s, self.margin_s)
        if quiet is None:
            quiet = not active
        if getattr(baseline, "time_aware", False):
            flagged = baseline.is_excursion(
                value, spec.rel_threshold, spec.z_threshold, spec.direction, t_s=t_s
            )
        else:
            flagged = baseline.is_excursion(
                value, spec.rel_threshold, spec.z_threshold, spec.direction
            )
        if flagged:
            exc = Excursion(
                t_s=t_s,
                metric=metric,
                value=value,
                baseline_mean=baseline.mean,
                baseline_std=baseline.std,
                attributed_to=tuple(iv.fault_id for iv in active),
                attributed_kinds=tuple(iv.kind for iv in active),
            )
            self._excursions.append(exc)
            self._obs_excursions.inc(1.0, metric=metric)
            if not exc.explained:
                self._obs_unexplained.inc(1.0, metric=metric)
            return exc
        if quiet:
            self._n_quiet += 1
            if getattr(baseline, "time_aware", False):
                baseline.update(value, t_s=t_s)
            else:
                baseline.update(value)
        return None

    def baseline(self, metric: str):
        return self._baselines[metric]

    def report(self) -> AttributionReport:
        return AttributionReport(
            n_samples=self._n_samples,
            n_quiet_samples=self._n_quiet,
            excursions=tuple(self._excursions),
        )
