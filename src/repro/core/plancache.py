"""Memoised reconstruction plans, phases and read rounds.

A rebuild derives, for every stripe, a
:class:`~repro.core.reconstruction.ReconstructionPlan` from the
stripe's *logical* failure set — but the logical set is the only input:
two stripes whose rotation maps the same physical failures onto the
same logical disks get byte-identical plans.  A rotated stack has at
most ``n_disks`` distinct logical sets (exactly one without rotation),
yet the executor used to re-derive the plan and re-split it into
phases once per stripe — thousands of identical derivations in a
large array.

:class:`PlanCache` computes each equivalence class once.  Correctness
is keyed entirely on the logical failure tuple, so a *growing* failure
set (a disk dying mid-rebuild) simply lands in a new cache slot — but
:meth:`invalidate` exists as an explicit hook and the rebuild executor
calls it whenever the failure set changes, keeping the cache small and
making the invalidation point obvious for future layouts whose plans
might depend on state beyond the failure set.

Cached objects are **shared**: callers must treat plans, phase lists
and rounds as immutable (the executor already does — substituted
recovery steps are built as fresh lists).
"""

from __future__ import annotations

from ..obs import default_registry
from .errors import UnrecoverableFailureError
from .layouts import Layout
from .planner import schedule_read_rounds
from .reconstruction import RebuildPhase, ReconstructionPlan, split_into_phases

__all__ = ["PlanCache"]


class PlanCache:
    """Per-layout memo of reconstruction plans keyed by logical failures.

    Parameters
    ----------
    layout:
        The architecture whose plans are cached.  The cache must not be
        shared between layouts.
    enabled:
        ``False`` turns every lookup into a recomputation — the switch
        ``benchmarks/perfbench.py`` uses to price the cache itself.
    """

    __slots__ = (
        "layout",
        "enabled",
        "hits",
        "misses",
        "_plans",
        "_phases",
        "_rounds",
        "_unrecoverable",
        "_c_hits",
        "_c_misses",
        "_c_invalidated",
    )

    def __init__(self, layout: Layout, enabled: bool = True) -> None:
        self.layout = layout
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        # null instruments when observability is off — no extra branch
        # needed on the lookup path
        reg = default_registry()
        self._c_hits = reg.counter("plancache.hits", "plan lookups served from cache").labels()
        self._c_misses = reg.counter("plancache.misses", "plan lookups that derived a plan").labels()
        self._c_invalidated = reg.counter(
            "plancache.invalidated", "plan entries dropped by invalidation"
        ).labels()
        self._plans: dict[tuple[int, ...], ReconstructionPlan] = {}
        self._phases: dict[tuple[int, ...], list[RebuildPhase]] = {}
        self._rounds: dict[tuple[int, ...], list[list[tuple[int, int]]]] = {}
        #: failure sets known to be beyond the layout's tolerance,
        #: mapped to the planner's original message — counting-mode
        #: rebuilds probe these once per stripe, so negative results
        #: are cached too
        self._unrecoverable: dict[tuple[int, ...], str] = {}

    # ------------------------------------------------------------------
    def plan(self, failed_logical: tuple[int, ...]) -> ReconstructionPlan:
        """The (shared, treat-as-immutable) plan for a logical failure set."""
        failed_logical = tuple(failed_logical)
        if not self.enabled:
            return self.layout.reconstruction_plan(failed_logical)
        cached = self._plans.get(failed_logical)
        if cached is not None:
            self.hits += 1
            self._c_hits.inc()
            return cached
        message = self._unrecoverable.get(failed_logical)
        if message is not None:
            self.hits += 1
            self._c_hits.inc()
            raise UnrecoverableFailureError(message)
        self.misses += 1
        self._c_misses.inc()
        try:
            plan = self.layout.reconstruction_plan(failed_logical)
        except UnrecoverableFailureError as exc:
            self._unrecoverable[failed_logical] = str(exc)
            raise
        self._plans[failed_logical] = plan
        return plan

    def phases(self, failed_logical: tuple[int, ...]) -> list[RebuildPhase]:
        """The plan's per-failed-disk phases (shared, treat-as-immutable)."""
        failed_logical = tuple(failed_logical)
        if not self.enabled:
            return split_into_phases(self.plan(failed_logical))
        cached = self._phases.get(failed_logical)
        if cached is not None:
            return cached
        phases = split_into_phases(self.plan(failed_logical))
        self._phases[failed_logical] = phases
        return phases

    def read_rounds(self, failed_logical: tuple[int, ...]) -> list[list[tuple[int, int]]]:
        """The plan's parallel read rounds (shared, treat-as-immutable)."""
        failed_logical = tuple(failed_logical)
        if not self.enabled:
            return schedule_read_rounds(self.plan(failed_logical))
        cached = self._rounds.get(failed_logical)
        if cached is not None:
            return cached
        rounds = schedule_read_rounds(self.plan(failed_logical))
        self._rounds[failed_logical] = rounds
        return rounds

    # ------------------------------------------------------------------
    def invalidate(self, affected=None) -> int:
        """Drop cached plans; returns how many plan entries were dropped.

        Called by the rebuild executor when the active failure set
        grows mid-rebuild.  With ``affected`` — an iterable of the
        *logical* disk ids the new failure maps onto — only entries
        whose failure set intersects it are dropped: keys fully encode
        the failure sets they were derived from, so a disjoint entry
        (e.g. the plans for stripes whose rotation keeps the new dead
        disk out of their logical set) stays valid and keeps its hits.
        ``invalidate()`` with no argument still flushes everything —
        the conservative hook for future layout state beyond the
        failure set.
        """
        if affected is None:
            dropped = len(self._plans)
            self._plans.clear()
            self._phases.clear()
            self._rounds.clear()
            self._unrecoverable.clear()
            self._c_invalidated.inc(dropped)
            return dropped
        aff = frozenset(affected)
        dropped = 0
        for table in (self._plans, self._phases, self._rounds, self._unrecoverable):
            stale = [key for key in table if not aff.isdisjoint(key)]
            for key in stale:
                del table[key]
            if table is self._plans:
                dropped = len(stale)
        self._c_invalidated.inc(dropped)
        return dropped

    def __len__(self) -> int:
        return len(self._plans)
