"""Properties 1-3: the paper's proved guarantees and their failures."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arrangement import (
    IdentityArrangement,
    IteratedArrangement,
    PermutationArrangement,
    ShiftedArrangement,
)
from repro.core.properties import (
    is_equally_powerful,
    property_report,
    satisfies_property1,
    satisfies_property2,
    satisfies_property3,
)


@pytest.mark.parametrize("n", range(1, 10))
def test_shifted_satisfies_all_three_properties(n):
    """The paper's §IV-B and §VI-C proofs, checked for every n."""
    arr = ShiftedArrangement(n)
    assert satisfies_property1(arr)
    assert satisfies_property2(arr)
    assert satisfies_property3(arr)
    assert is_equally_powerful(arr)


@pytest.mark.parametrize("n", range(2, 8))
def test_identity_fails_p1_p2_but_keeps_p3(n):
    """Traditional mirroring: a data disk's replicas all co-locate
    (no P1/P2), but a data row still spreads across mirror disks (P3)."""
    arr = IdentityArrangement(n)
    assert not satisfies_property1(arr)
    assert not satisfies_property2(arr)
    assert satisfies_property3(arr)
    assert not is_equally_powerful(arr)


def test_identity_trivially_powerful_when_single_disk():
    arr = IdentityArrangement(1)
    assert is_equally_powerful(arr)


def test_property_report_keys():
    rep = property_report(ShiftedArrangement(3))
    assert rep == {"P1": True, "P2": True, "P3": True}


# ----------------------------------------------------------------------
# the paper's Fig. 8 claims for n = 3
# ----------------------------------------------------------------------


@pytest.mark.parametrize("k", [1, 3, 5])
def test_odd_iterates_satisfy_p1_p2_at_n3(k):
    arr = IteratedArrangement(3, k)
    assert satisfies_property1(arr)
    assert satisfies_property2(arr)


def test_third_iterate_violates_p3_fifth_satisfies_it():
    assert not satisfies_property3(IteratedArrangement(3, 3))
    assert satisfies_property3(IteratedArrangement(3, 5))


def test_odd_iterate_claim_is_n3_specific():
    """§VI-E states odd iterates keep P1/P2; exhaustive checking shows
    this holds at n=3 (the paper's figure) and for n=7, but *fails* at
    n=2, 4, 5, 6 for some odd k — the claim is figure-specific, which
    is exactly why the paper adds 'we have to check the arrangements
    carefully'.  This test pins the measured reality so a regression in
    either direction is caught."""
    expected_p1 = {
        (2, 3): False,
        (3, 3): True,
        (4, 3): False,
        (5, 5): False,
        (6, 3): False,
        (7, 3): True,
        (7, 5): True,
    }
    for (n, k), want in expected_p1.items():
        arr = IteratedArrangement(n, k)
        assert satisfies_property1(arr) == want, (n, k)
        assert satisfies_property2(arr) == want, (n, k)


# ----------------------------------------------------------------------
# structural equivalences
# ----------------------------------------------------------------------


@given(n=st.integers(1, 7), seed=st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_p1_equivalent_to_p2_for_any_bijection(n, seed):
    """For a bijective arrangement, P1 and P2 are equivalent: both say
    the disk-to-disk transfer matrix is a permutation-doubly-stochastic
    0/1 matrix (each data disk hits each mirror disk exactly once)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    cells = [(i, j) for i in range(n) for j in range(n)]
    perm = rng.permutation(len(cells))
    mapping = {cells[a]: cells[int(b)] for a, b in zip(range(len(cells)), perm)}
    arr = PermutationArrangement(n, mapping)
    assert satisfies_property1(arr) == satisfies_property2(arr)


def test_reverse_shift_is_also_equally_powerful():
    """The inverse-shift twin used by the shifted three-mirror layout."""
    for n in range(1, 8):
        arr = PermutationArrangement(
            n, {(i, j): ((i - j) % n, i) for i in range(n) for j in range(n)}
        )
        assert is_equally_powerful(arr)


def test_row_swap_of_shifted_loses_p3_keeps_p1():
    """Moving one replica within its mirror disk cannot break P1/P2;
    swapping two replicas *across* mirror disks in the same row breaks
    P3's 'one per disk' only if it creates a collision — build one."""
    n = 3
    base = ShiftedArrangement(n)
    mapping = {
        (i, j): base.mirror_location(i, j) for i in range(n) for j in range(n)
    }
    # Send both (0, 0) and (1, 0)'s replicas onto mirror disk 1 by
    # swapping full column assignments of data disks 0 and 1 for row 0
    # against row 1:
    mapping[(0, 0)], mapping[(0, 1)] = mapping[(0, 1)], mapping[(0, 0)]
    arr = PermutationArrangement(n, mapping)
    # data disk 0 still spreads over all mirror disks (its own replicas
    # merely swapped targets), so P1 holds for disk 0...
    assert sorted(arr.replica_disks_of_data_disk(0)) == list(range(n))
    # ...but row 0 now hits mirror disk 1 twice: P3 broken.
    assert not satisfies_property3(arr)
