"""Mirror layouts: content maps, write plans, reconstruction accesses."""

from __future__ import annotations

import pytest

from repro.core.arrangement import IteratedArrangement, ShiftedArrangement
from repro.core.errors import LayoutError, UnrecoverableFailureError
from repro.core.layouts import MirrorLayout, shifted_mirror, traditional_mirror
from repro.core.reconstruction import RecoveryMethod


# ----------------------------------------------------------------------
# construction and content
# ----------------------------------------------------------------------


def test_names_and_counts():
    assert traditional_mirror(4).name == "mirror"
    assert shifted_mirror(4).name == "shifted-mirror"
    lay = shifted_mirror(4)
    assert lay.n_disks == 8
    assert lay.rows == 4
    assert lay.fault_tolerance == 1


def test_arrangement_size_mismatch_rejected():
    with pytest.raises(LayoutError, match="arrangement is for"):
        MirrorLayout(4, ShiftedArrangement(5))


@pytest.mark.parametrize("builder", [traditional_mirror, shifted_mirror])
def test_content_map_is_complete_and_consistent(builder):
    lay = builder(5)
    data_seen = set()
    replica_seen = set()
    for disk in range(lay.n_disks):
        for row in range(lay.rows):
            c = lay.content(disk, row)
            if c.kind == "data":
                assert lay.data_cell(c.i, c.j) == (disk, row)
                data_seen.add((c.i, c.j))
            else:
                assert c.kind == "replica"
                assert lay.mirror_cell(c.i, c.j) == (disk, row)
                replica_seen.add((c.i, c.j))
    all_cells = {(i, j) for i in range(5) for j in range(5)}
    assert data_seen == all_cells
    assert replica_seen == all_cells


def test_replica_cells_point_into_mirror_array():
    lay = shifted_mirror(4)
    for i in range(4):
        for j in range(4):
            (disk, row), = lay.replica_cells(i, j)
            assert 4 <= disk < 8
            c = lay.content(disk, row)
            assert (c.kind, c.i, c.j) == ("replica", i, j)


def test_storage_efficiency_is_half():
    assert traditional_mirror(3).storage_efficiency() == 0.5
    assert shifted_mirror(7).storage_efficiency() == 0.5


# ----------------------------------------------------------------------
# write plans (§VI-C)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("builder", [traditional_mirror, shifted_mirror])
def test_small_write_is_one_access_two_elements(builder):
    lay = builder(5)
    plan = lay.write_plan([(2, 3)])
    assert plan.total_elements_written == 2  # data + replica
    assert plan.num_write_accesses == 1  # on distinct disks
    assert plan.total_elements_read == 0  # no parity to maintain


@pytest.mark.parametrize("builder", [traditional_mirror, shifted_mirror])
def test_large_write_is_one_access(builder):
    """Property 3 in action: a full data row writes 2n elements on 2n
    distinct disks — one parallel write access."""
    lay = builder(6)
    for j in range(6):
        plan = lay.large_write_plan(j)
        assert plan.total_elements_written == 12
        assert plan.num_write_accesses == 1


def test_large_write_needs_more_accesses_without_p3():
    """The §VI-E iterate-3 arrangement violates P3 maximally at n=3:
    each data row's replicas collapse onto a single mirror disk, so a
    large write degenerates to n sequential accesses — exactly the
    pathology Property 3 exists to rule out."""
    lay = MirrorLayout(3, IteratedArrangement(3, 3))
    for j in range(3):
        assert lay.large_write_plan(j).num_write_accesses == 3


def test_full_stripe_write_costs_n_accesses():
    lay = shifted_mirror(4)
    plan = lay.write_plan([(i, j) for i in range(4) for j in range(4)])
    assert plan.num_write_accesses == 4  # n rows, each disk written n times


# ----------------------------------------------------------------------
# reconstruction plans (§II-B vs §IV-B)
# ----------------------------------------------------------------------


@pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7])
def test_traditional_needs_n_accesses_shifted_needs_one(n):
    trad, shif = traditional_mirror(n), shifted_mirror(n)
    for f in range(2 * n):
        assert trad.reconstruction_plan([f]).num_read_accesses == n
        assert shif.reconstruction_plan([f]).num_read_accesses == 1


def test_traditional_reads_all_from_one_disk():
    lay = traditional_mirror(5)
    plan = lay.reconstruction_plan([2])
    assert set(plan.reads) == {5 + 2}
    assert plan.reads[7] == list(range(5))


def test_shifted_reads_one_from_each_disk_of_other_array():
    lay = shifted_mirror(5)
    plan = lay.reconstruction_plan([2])  # data disk
    assert set(plan.reads) == set(range(5, 10))
    assert all(len(rows) == 1 for rows in plan.reads.values())
    plan = lay.reconstruction_plan([7])  # mirror disk
    assert set(plan.reads) == set(range(5))


@pytest.mark.parametrize("builder", [traditional_mirror, shifted_mirror])
def test_all_recovery_steps_are_copies(builder):
    lay = builder(4)
    for f in range(8):
        plan = lay.reconstruction_plan([f])
        assert len(plan.steps) == 4
        assert all(s.method is RecoveryMethod.COPY for s in plan.steps)
        assert sorted(s.target for s in plan.steps) == [(f, r) for r in range(4)]


def test_double_failure_exceeds_tolerance():
    lay = shifted_mirror(4)
    with pytest.raises(UnrecoverableFailureError):
        lay.reconstruction_plan([0, 1])


def test_unknown_disk_rejected():
    with pytest.raises(LayoutError):
        shifted_mirror(3).reconstruction_plan([6])


def test_empty_failure_set_gives_empty_plan():
    plan = shifted_mirror(3).reconstruction_plan([])
    assert plan.num_read_accesses == 0
    assert not plan.steps


def test_plans_validate_internally():
    for builder in (traditional_mirror, shifted_mirror):
        lay = builder(5)
        for f in range(lay.n_disks):
            plan = lay.reconstruction_plan([f])
            plan.validate(lay.n_disks, lay.rows)  # raises on inconsistency
