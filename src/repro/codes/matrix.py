"""Matrices over GF(2^w) for matrix-based erasure codes.

Reed-Solomon coding in the Jerasure style is "matrix coding": a
``(k+m) x k`` distribution matrix whose top ``k x k`` block is the
identity (systematic code) and whose bottom ``m`` rows generate the
coding devices.  Decoding inverts the ``k x k`` submatrix formed by any
``k`` surviving rows.  This module supplies those matrix operations.

All matrices are 2-D NumPy arrays with the field's dtype; the field is
passed explicitly to every operation (no global state).
"""

from __future__ import annotations

import numpy as np

from .galois import GF

__all__ = [
    "identity",
    "matmul",
    "matvec_regions",
    "invert",
    "vandermonde",
    "rs_distribution_matrix",
    "cauchy_matrix",
    "is_invertible",
]


def identity(n: int, gf: GF) -> np.ndarray:
    """The ``n x n`` identity matrix over the field."""
    return np.eye(n, dtype=gf.dtype)


def matmul(a: np.ndarray, b: np.ndarray, gf: GF) -> np.ndarray:
    """Matrix product over GF(2^w).

    Implemented as a broadcastable table-multiply followed by an XOR
    reduction — the GF analogue of ``a @ b``.
    """
    a = np.asarray(a, dtype=gf.dtype)
    b = np.asarray(b, dtype=gf.dtype)
    if a.shape[1] != b.shape[0]:
        raise ValueError(f"shape mismatch for GF matmul: {a.shape} x {b.shape}")
    # products[i, j, l] = a[i, l] * b[l, j]
    products = gf.multiply(a[:, None, :], b.T[None, :, :])
    return np.bitwise_xor.reduce(products, axis=2).astype(gf.dtype)


def matvec_regions(matrix: np.ndarray, regions: list[np.ndarray], gf: GF) -> list[np.ndarray]:
    """Apply a coding matrix to a vector of data *regions*.

    Each output region ``i`` is ``XOR_j matrix[i, j] * regions[j]``.
    This is the bulk-encode kernel shared by Reed-Solomon encode and
    decode.
    """
    matrix = np.asarray(matrix, dtype=gf.dtype)
    if matrix.shape[1] != len(regions):
        raise ValueError(
            f"matrix has {matrix.shape[1]} columns but {len(regions)} regions were given"
        )
    return [gf.dot_regions(row, regions) for row in matrix]


def invert(matrix: np.ndarray, gf: GF) -> np.ndarray:
    """Invert a square matrix over GF(2^w) by Gauss-Jordan elimination.

    Raises
    ------
    np.linalg.LinAlgError
        If the matrix is singular.
    """
    matrix = np.asarray(matrix, dtype=gf.dtype)
    n, m = matrix.shape
    if n != m:
        raise ValueError(f"cannot invert non-square matrix of shape {matrix.shape}")
    # Work in an augmented [A | I] block.
    aug = np.concatenate([matrix.astype(np.int64), np.eye(n, dtype=np.int64)], axis=1)
    for col in range(n):
        # pivot selection: any nonzero entry in/below the diagonal
        pivot_rows = np.nonzero(aug[col:, col])[0]
        if pivot_rows.size == 0:
            raise np.linalg.LinAlgError("matrix is singular over GF(2^w)")
        pivot = col + int(pivot_rows[0])
        if pivot != col:
            aug[[col, pivot]] = aug[[pivot, col]]
        # normalise the pivot row
        inv_p = gf.inverse(int(aug[col, col]))
        aug[col] = gf.multiply(np.full(2 * n, inv_p, dtype=np.int64), aug[col])
        # eliminate the column everywhere else (vectorised across rows)
        factors = aug[:, col].copy()
        factors[col] = 0
        nonzero = np.nonzero(factors)[0]
        if nonzero.size:
            contrib = gf.multiply(factors[nonzero][:, None], aug[col][None, :])
            aug[nonzero] ^= contrib.astype(np.int64)
    return aug[:, n:].astype(gf.dtype)


def is_invertible(matrix: np.ndarray, gf: GF) -> bool:
    """Whether a square matrix over the field has an inverse."""
    try:
        invert(matrix, gf)
        return True
    except np.linalg.LinAlgError:
        return False


def vandermonde(rows: int, cols: int, gf: GF) -> np.ndarray:
    """The ``rows x cols`` Vandermonde matrix ``V[i, j] = i^j`` over the field.

    Note the convention (matching Jerasure): row index is the evaluation
    point, column index the power, and row 0 evaluates at element 0
    (hence ``V[0] = [1, 0, 0, ...]``).
    """
    if rows > gf.size:
        raise ValueError(f"cannot build a Vandermonde matrix with {rows} rows over {gf!r}")
    out = np.zeros((rows, cols), dtype=gf.dtype)
    for i in range(rows):
        for j in range(cols):
            out[i, j] = gf.power(i, j) if not (i == 0 and j == 0) else 1
    return out


def rs_distribution_matrix(k: int, m: int, gf: GF) -> np.ndarray:
    """Systematic ``(k+m) x k`` Reed-Solomon distribution matrix.

    Built from an extended Vandermonde matrix transformed by elementary
    column operations so that the top ``k`` rows form the identity (the
    classic Plank construction used by Jerasure).  Any ``k`` of the
    ``k+m`` rows are linearly independent, which is what makes the code
    MDS: any ``m`` device failures are decodable.
    """
    if k + m > gf.size:
        raise ValueError(f"k+m = {k + m} exceeds field size {gf.size}; use a larger w")
    v = vandermonde(k + m, k, gf).astype(np.int64)
    # Column-reduce so the top k x k block becomes the identity; column
    # operations preserve the "any k rows independent" property.
    for col in range(k):
        if v[col, col] == 0:
            swap = next(c for c in range(col + 1, k) if v[col, c] != 0)
            v[:, [col, swap]] = v[:, [swap, col]]
        inv_p = gf.inverse(int(v[col, col]))
        v[:, col] = gf.multiply(np.full(k + m, inv_p, dtype=np.int64), v[:, col])
        for other in range(k):
            if other != col and v[col, other] != 0:
                factor = int(v[col, other])
                v[:, other] ^= gf.multiply(
                    np.full(k + m, factor, dtype=np.int64), v[:, col]
                ).astype(np.int64)
    return v.astype(gf.dtype)


def cauchy_matrix(k: int, m: int, gf: GF) -> np.ndarray:
    """An ``m x k`` Cauchy matrix over the field.

    ``C[i, j] = 1 / (x_i + y_j)`` with distinct ``x_i = i`` and
    ``y_j = m + j``.  Every square submatrix of a Cauchy matrix is
    invertible, so stacking it under the identity yields an MDS code
    directly (Cauchy Reed-Solomon).
    """
    if k + m > gf.size:
        raise ValueError(f"k+m = {k + m} exceeds field size {gf.size}; use a larger w")
    x = np.arange(m, dtype=np.int64)
    y = np.arange(m, m + k, dtype=np.int64)
    denom = np.bitwise_xor(x[:, None], y[None, :])
    return gf.inverse(denom).astype(gf.dtype)
