"""Ablation: element size vs the reconstruction gain.

DESIGN.md §5: the empirical Fig. 9 gain (1.54-4.55x) sits below the
theoretical n x because every scattered element read pays a fixed
mechanical overhead.  Growing the element amortises that overhead, so
the measured gain should climb toward n; shrinking it collapses the
gain.  This is the quantitative explanation the paper gives in §VII-A
("random reads ... eliminates the seek time").
"""

from __future__ import annotations

from conftest import run_once

from repro.core.layouts import shifted_mirror, traditional_mirror
from repro.raidsim.controller import RaidController

_MB = 1024 * 1024


def _gain(n, element_size):
    results = {}
    for name, builder in (("trad", traditional_mirror), ("shift", shifted_mirror)):
        ctrl = RaidController(
            builder(n), n_stripes=10, element_size=element_size, payload_bytes=8
        )
        results[name] = ctrl.rebuild([0]).read_throughput_mbps
    return results["shift"] / results["trad"]


def test_bench_element_size_sweep(benchmark):
    n = 5
    sizes = [256 * 1024, 1 * _MB, 4 * _MB, 16 * _MB, 64 * _MB]

    def sweep():
        return [(s, _gain(n, s)) for s in sizes]

    rows = run_once(benchmark, sweep)
    gains = [g for _, g in rows]
    assert all(b > a for a, b in zip(gains, gains[1:])), gains
    # tiny elements: overhead dominates, little gain
    assert gains[0] < 2.5
    # huge elements: approaching the theoretical factor n
    assert gains[-1] > 0.85 * n
    benchmark.extra_info["gain_by_element_size"] = {
        f"{s // 1024}KiB": g for s, g in rows
    }


def test_bench_paper_element_size_in_band(benchmark):
    """At the paper's 4 MB element the n=5 gain lands in its band."""
    gain = run_once(benchmark, _gain, 5, 4 * _MB)
    assert 2.5 < gain < 4.0
    benchmark.extra_info["gain_4mb_n5"] = gain
