"""Stripe geometry and global disk addressing."""

from __future__ import annotations

import pytest

from repro.core.stripe import ArrayKind, ElementAddr, StripeGeometry


def test_mirror_geometry_counts():
    g = StripeGeometry(5)
    assert g.n_disks == 10
    assert g.rows == 5
    assert g.data_elements_per_stripe == 25


def test_mirror_parity_geometry_counts():
    g = StripeGeometry(5, has_parity=True)
    assert g.n_disks == 11


def test_three_mirror_geometry_counts():
    g = StripeGeometry(4, n_mirror_arrays=2)
    assert g.n_disks == 12


def test_invalid_geometry_rejected():
    with pytest.raises(ValueError):
        StripeGeometry(0)
    with pytest.raises(ValueError):
        StripeGeometry(3, n_mirror_arrays=3)


@pytest.mark.parametrize(
    "n,has_parity,mirrors", [(3, False, 1), (3, True, 1), (4, False, 2), (5, True, 2)]
)
def test_global_disk_roundtrip(n, has_parity, mirrors):
    g = StripeGeometry(n, n_mirror_arrays=mirrors, has_parity=has_parity)
    seen = set()
    for gd in g.all_disks():
        array, local = g.locate_disk(gd)
        assert g.global_disk(array, local) == gd
        seen.add(gd)
    assert seen == set(range(g.n_disks))


def test_global_disk_ordering_data_then_mirror_then_parity():
    g = StripeGeometry(3, has_parity=True)
    assert g.global_disk(ArrayKind.DATA, 0) == 0
    assert g.global_disk(ArrayKind.MIRROR, 0) == 3
    assert g.global_disk(ArrayKind.PARITY, 0) == 6


def test_parity_access_without_parity_rejected():
    g = StripeGeometry(3)
    with pytest.raises(ValueError, match="no parity disk"):
        g.global_disk(ArrayKind.PARITY, 0)


def test_parity_disk_index_must_be_zero():
    g = StripeGeometry(3, has_parity=True)
    with pytest.raises(IndexError):
        g.global_disk(ArrayKind.PARITY, 1)


def test_second_mirror_requires_two_arrays():
    g = StripeGeometry(3)
    with pytest.raises(ValueError, match="single mirror array"):
        g.global_disk(ArrayKind.MIRROR2, 0)


def test_disk_index_bounds():
    g = StripeGeometry(3)
    with pytest.raises(IndexError):
        g.global_disk(ArrayKind.DATA, 3)
    with pytest.raises(IndexError):
        g.locate_disk(6)
    with pytest.raises(IndexError):
        g.locate_disk(-1)


def test_elements_on_disk():
    g = StripeGeometry(3, has_parity=True)
    elems = g.elements_on_disk(4)  # mirror disk 1
    assert elems == [ElementAddr(ArrayKind.MIRROR, 1, r) for r in range(3)]
    parity_elems = g.elements_on_disk(6)
    assert all(e.array is ArrayKind.PARITY for e in parity_elems)


def test_element_addr_ordering_and_str():
    a = ElementAddr(ArrayKind.DATA, 0, 1)
    b = ElementAddr(ArrayKind.DATA, 0, 2)
    assert a < b
    assert str(a) == "data[0,1]"
