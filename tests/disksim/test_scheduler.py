"""Queue disciplines: FIFO, C-SCAN elevator, strict priority."""

from __future__ import annotations

import pytest

from repro.disksim.request import IOKind, IORequest
from repro.disksim.scheduler import ElevatorScheduler, FIFOScheduler, PriorityScheduler


def _req(offset, priority=10):
    return IORequest(0, offset, 10, IOKind.READ, priority=priority)


def test_fifo_preserves_arrival_order():
    s = FIFOScheduler()
    reqs = [_req(o) for o in (50, 10, 30)]
    for r in reqs:
        s.add(r)
    assert [s.pop(0).offset for _ in range(3)] == [50, 10, 30]


def test_pop_empty_raises():
    for s in (FIFOScheduler(), ElevatorScheduler(), PriorityScheduler()):
        with pytest.raises(IndexError):
            s.pop(0)


def test_len_and_bool():
    s = FIFOScheduler()
    assert not s and len(s) == 0
    s.add(_req(0))
    assert s and len(s) == 1


def test_elevator_serves_ascending_from_head():
    s = ElevatorScheduler()
    for o in (50, 10, 30, 70):
        s.add(_req(o))
    # head at 25: ahead = {30, 50, 70}, served ascending, then wrap to 10
    order = [s.pop(25).offset, s.pop(30).offset, s.pop(50).offset, s.pop(70).offset]
    assert order == [30, 50, 70, 10]


def test_elevator_wraps_when_nothing_ahead():
    s = ElevatorScheduler()
    s.add(_req(5))
    s.add(_req(15))
    assert s.pop(100).offset == 5  # wrap-around to lowest


def test_elevator_ties_break_by_request_id():
    s = ElevatorScheduler()
    a, b = _req(10), _req(10)
    s.add(b)
    s.add(a)
    assert s.pop(0).req_id == min(a.req_id, b.req_id)


def test_priority_classes_trump_position():
    s = PriorityScheduler()
    s.add(_req(5, priority=10))
    s.add(_req(500, priority=0))
    # head sits right next to the rebuild request, but the user read wins
    assert s.pop(4).offset == 500


def test_priority_elevator_within_class():
    s = PriorityScheduler()
    for o in (50, 10, 30):
        s.add(_req(o, priority=0))
    assert [s.pop(20).offset, s.pop(30).offset, s.pop(50).offset] == [30, 50, 10]


def test_peek_all_is_nondestructive():
    s = ElevatorScheduler()
    s.add(_req(1))
    s.add(_req(2))
    assert len(s.peek_all()) == 2
    assert len(s) == 2
