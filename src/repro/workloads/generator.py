"""Workload generators for the evaluation (§VII).

* :func:`random_large_writes` — the Fig. 10 workload: "one thousand
  random large write operations of the size varying from one element to
  as large as a whole stripe".  Logical addresses are row-major over
  the data array (the large-write order of §VI-C), so an op of size
  ``k`` touches ``ceil`` of ``k / n`` consecutive rows.
* :func:`user_read_stream` — Poisson single-element reads for the
  on-line reconstruction scenario (§III): the reads target the failed
  disk's data, forcing recover-and-respond with priority over rebuild
  I/O.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["WriteOp", "UserRead", "random_large_writes", "user_read_stream"]


@dataclass(frozen=True)
class WriteOp:
    """One logical write: data elements ``(i, j)`` of one stripe."""

    stripe: int
    elements: tuple[tuple[int, int], ...]

    @property
    def n_elements(self) -> int:
        return len(self.elements)


@dataclass(frozen=True)
class UserRead:
    """One user read arriving at ``time`` for data element ``(i, j)``.

    ``tenant`` names the workload class that generated the read (empty
    for single-tenant streams) — see
    :class:`~repro.workloads.openloop.TenantSpec`.
    """

    time: float
    stripe: int
    i: int
    j: int
    tenant: str = ""


def random_large_writes(
    n: int,
    n_stripes: int,
    n_ops: int = 1000,
    rng: np.random.Generator | None = None,
) -> list[WriteOp]:
    """The Fig. 10 write workload.

    Each op picks a stripe uniformly, a size uniform in
    ``[1, n*n]`` elements and a row-major aligned start so the run fits
    in the stripe.  Element order within an op is row-major
    (``j`` outer, ``i`` inner), the order large writes proceed in.
    """
    if rng is None:
        rng = np.random.default_rng(0)
    ops: list[WriteOp] = []
    stripe_elems = n * n
    for _ in range(n_ops):
        stripe = int(rng.integers(0, n_stripes))
        size = int(rng.integers(1, stripe_elems + 1))
        start = int(rng.integers(0, stripe_elems - size + 1))
        cells = []
        for e in range(start, start + size):
            j, i = divmod(e, n)
            cells.append((i, j))
        ops.append(WriteOp(stripe, tuple(cells)))
    return ops


def user_read_stream(
    n: int,
    n_stripes: int,
    duration_s: float,
    rate_per_s: float,
    target_disk: int | None = None,
    rng: np.random.Generator | None = None,
) -> list[UserRead]:
    """Poisson arrivals of single-element user reads.

    ``target_disk`` restricts reads to one data disk (typically the
    failed one, the §III scenario); ``None`` spreads them uniformly.
    """
    if rng is None:
        rng = np.random.default_rng(1)
    if rate_per_s <= 0:
        raise ValueError(f"rate must be positive, got {rate_per_s}")
    if target_disk is not None and not 0 <= target_disk < n:
        raise ValueError(
            f"target_disk must be in [0, {n}), got {target_disk}"
        )
    reads: list[UserRead] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate_per_s))
        if t >= duration_s:
            break
        stripe = int(rng.integers(0, n_stripes))
        i = int(rng.integers(0, n)) if target_disk is None else target_disk
        j = int(rng.integers(0, n))
        reads.append(UserRead(t, stripe, i, j))
    return reads
