"""Synthetic film content: determinism and independence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.film import FilmSource


def test_deterministic_per_coordinate():
    a = FilmSource(seed=1)
    b = FilmSource(seed=1)
    assert np.array_equal(a.element(3, 1, 2), b.element(3, 1, 2))


def test_different_coordinates_differ():
    src = FilmSource(payload_bytes=32, seed=1)
    base = src.element(0, 0, 0)
    assert not np.array_equal(base, src.element(1, 0, 0))
    assert not np.array_equal(base, src.element(0, 1, 0))
    assert not np.array_equal(base, src.element(0, 0, 1))


def test_different_seeds_differ():
    assert not np.array_equal(
        FilmSource(seed=1).element(0, 0, 0), FilmSource(seed=2).element(0, 0, 0)
    )


def test_payload_size_respected():
    src = FilmSource(payload_bytes=7)
    assert src.element(0, 0, 0).shape == (7,)
    assert src.element(0, 0, 0).dtype == np.uint8


def test_invalid_payload_rejected():
    with pytest.raises(ValueError):
        FilmSource(payload_bytes=0)


def test_fresh_uses_caller_rng():
    src = FilmSource(payload_bytes=16)
    rng1 = np.random.default_rng(9)
    rng2 = np.random.default_rng(9)
    assert np.array_equal(src.fresh(rng1), src.fresh(rng2))
