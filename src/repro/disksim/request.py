"""I/O request objects for the disk simulator."""

from __future__ import annotations

import enum
import itertools

__all__ = ["IOKind", "IORequest"]

_next_id = itertools.count()


class IOKind(str, enum.Enum):
    """Read or write."""

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class IORequest:
    """One disk I/O operation.

    The class is slotted: simulations allocate one of these per I/O,
    and dropping the per-instance ``__dict__`` measurably shrinks both
    allocation time and the resident size of long campaign runs.  The
    constructor is hand-rolled rather than dataclass-generated for the
    same reason — request creation sits on the batch-submission hot
    path, and the generated ``__init__`` plus ``__post_init__`` hook
    costs ~45% more per instance than the flat assignments below.

    Parameters
    ----------
    disk:
        Target disk id within the array.
    offset:
        Byte offset on the disk.
    size:
        Transfer length in bytes.
    kind:
        Read or write.
    priority:
        Lower values are served first by priority-aware schedulers;
        the on-line reconstruction scenario gives user reads priority 0
        and reconstruction I/O priority 10 (paper §III).
    tag:
        Free-form label used by traces and tests (e.g. ``"rebuild"``,
        ``"user"``).
    """

    __slots__ = (
        "disk",
        "offset",
        "size",
        "kind",
        "priority",
        "tag",
        "req_id",
        "submit_time",
        "start_time",
        "finish_time",
        "error",
        "error_kind",
        "attempt",
        "root_id",
    )

    def __init__(
        self,
        disk: int,
        offset: int,
        size: int,
        kind: IOKind,
        priority: int = 10,
        tag: str = "",
        req_id: int | None = None,
        submit_time: float = 0.0,
        start_time: float = 0.0,
        finish_time: float = 0.0,
        error: bool = False,
        error_kind: str = "",
        attempt: int = 0,
        root_id: int = -1,
    ) -> None:
        if size <= 0:
            raise ValueError(f"request size must be positive, got {size}")
        if offset < 0:
            raise ValueError(f"request offset must be >= 0, got {offset}")
        self.disk = disk
        self.offset = offset
        self.size = size
        self.kind = kind
        self.priority = priority
        self.tag = tag
        #: globally unique id, fresh from a process-wide counter unless
        #: the caller pins one explicitly
        self.req_id = next(_next_id) if req_id is None else req_id
        # filled in by the engine
        self.submit_time = submit_time
        self.start_time = start_time
        self.finish_time = finish_time
        #: set when the request touched an unreadable sector (see
        #: :mod:`repro.disksim.faults`)
        self.error = error
        #: why the request errored: ``"lse"``, ``"transient"`` or
        #: ``"disk-failed"`` (see :mod:`repro.disksim.faultplan`)
        self.error_kind = error_kind
        #: 0 for a fresh request, k for its k-th retry (see
        #: :class:`repro.raidsim.controller.RetryPolicy`)
        self.attempt = attempt
        #: ``req_id`` of the original request this retry descends from;
        #: ``-1`` for a fresh request.  Fault models key per-operation
        #: state (e.g. a transient's remaining-failure budget) by the
        #: *chain* root, so two independent reads of the same geometry
        #: never share fault state.
        self.root_id = root_id

    def _astuple(self) -> tuple:
        return (
            self.disk,
            self.offset,
            self.size,
            self.kind,
            self.priority,
            self.tag,
            self.req_id,
            self.submit_time,
            self.start_time,
            self.finish_time,
            self.error,
            self.error_kind,
            self.attempt,
            self.root_id,
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not IORequest:
            return NotImplemented
        return self._astuple() == other._astuple()  # type: ignore[union-attr]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        fields = ", ".join(
            f"{name}={value!r}" for name, value in zip(self.__slots__, self._astuple())
        )
        return f"IORequest({fields})"

    @property
    def chain_id(self) -> int:
        """Identity of this request's retry chain (its own id if fresh)."""
        return self.req_id if self.root_id < 0 else self.root_id

    @property
    def end(self) -> int:
        """One past the last byte touched."""
        return self.offset + self.size

    @property
    def latency(self) -> float:
        """Submit-to-finish time (valid after completion)."""
        return self.finish_time - self.submit_time

    @property
    def service_duration(self) -> float:
        """Start-to-finish service time (valid after completion)."""
        return self.finish_time - self.start_time
