"""Shared benchmark helpers.

Benchmarks double as the reproduction harness: each one regenerates a
paper table/figure (or an ablation DESIGN.md calls for), attaches the
numbers to ``benchmark.extra_info`` so they land in the saved JSON, and
asserts the qualitative shape the paper reports.  Heavy simulations run
with ``rounds=1`` — the metric of interest is the artifact, not the
harness's own wall time.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark and return its value."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
