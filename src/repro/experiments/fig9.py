"""Experiment: reproduce Fig. 9 (paper §VII-A).

Average read throughput during reconstruction on the simulated Savvio
array, n = 3..7 data disks:

* **Fig. 9(a)** — mirror method, every single-disk failure enumerated;
* **Fig. 9(b)** — mirror method with parity, every double-disk failure
  enumerated (105 cases at n = 7: C(15, 2)).

Expected shape (the paper's measured result): the traditional curves
stay roughly stable while the shifted curves grow with n thanks to
I/O parallelism, for an improvement factor between 1.54 and 4.55.
Every reconstruction is verified byte-for-byte against the original
content, mirroring the paper's post-check.
"""

from __future__ import annotations

from ..core.layouts import (
    shifted_mirror,
    shifted_mirror_parity,
    traditional_mirror,
    traditional_mirror_parity,
)
from ..raidsim.availability import average_reconstruction_throughput
from .reporting import ExperimentResult, format_series

__all__ = ["run_a", "run_b", "run"]


def _series(builders, n_values, n_failed, n_stripes):
    out = {name: [] for name in builders}
    verified = True
    for n in n_values:
        for name, builder in builders.items():
            point = average_reconstruction_throughput(
                (lambda n=n, b=builder: b(n)), n_failed=n_failed, n_stripes=n_stripes
            )
            out[name].append(point.mean_read_throughput_mbps)
            verified &= point.all_verified
    return out, verified


def run_a(n_values=(3, 4, 5, 6, 7), n_stripes: int = 16) -> ExperimentResult:
    """Fig. 9(a): the mirror method under every single-disk failure."""
    builders = {
        "traditional mirror (MB/s)": traditional_mirror,
        "shifted mirror (MB/s)": shifted_mirror,
    }
    series, verified = _series(builders, n_values, n_failed=1, n_stripes=n_stripes)
    trad = series["traditional mirror (MB/s)"]
    shif = series["shifted mirror (MB/s)"]
    ratios = [s / t for s, t in zip(shif, trad)]
    series["improvement (x)"] = ratios
    text = format_series("n", list(n_values), series, precision=2)
    text += f"\nall reconstructions verified: {verified}"
    return ExperimentResult(
        experiment_id="fig9a",
        description="Average read throughput during reconstruction, mirror method",
        text=text,
        data={"n": list(n_values), **series, "verified": verified},
    )


def run_b(n_values=(3, 4, 5, 6, 7), n_stripes: int = 12) -> ExperimentResult:
    """Fig. 9(b): mirror with parity under every double-disk failure."""
    builders = {
        "traditional mirror+parity (MB/s)": traditional_mirror_parity,
        "shifted mirror+parity (MB/s)": shifted_mirror_parity,
    }
    series, verified = _series(builders, n_values, n_failed=2, n_stripes=n_stripes)
    trad = series["traditional mirror+parity (MB/s)"]
    shif = series["shifted mirror+parity (MB/s)"]
    series["improvement (x)"] = [s / t for s, t in zip(shif, trad)]
    text = format_series("n", list(n_values), series, precision=2)
    text += f"\nall reconstructions verified: {verified}"
    return ExperimentResult(
        experiment_id="fig9b",
        description="Average read throughput during reconstruction, mirror method with parity",
        text=text,
        data={"n": list(n_values), **series, "verified": verified},
    )


def run(n_values=(3, 4, 5, 6, 7)) -> list[ExperimentResult]:
    """Both Fig. 9 panels."""
    return [run_a(n_values), run_b(n_values)]


if __name__ == "__main__":  # pragma: no cover
    for result in run():
        print(result)
        print()
