"""Bench: the §VIII three-mirror extension.

The traditional variant can split a failed column across its two copy
disks, so the shifted gain here is ~n/2 (not n) — still substantial,
and the per-plan access counts confirm the mechanism.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.ext_three_mirror import (
    run,
    shifted_three_mirror,
    traditional_three_mirror,
)


def test_bench_three_mirror_throughput(benchmark):
    result = run_once(benchmark, run, (3, 5, 7), 10)
    assert result.data["verified"]
    ratios = result.data["improvement (x)"]
    # gain grows with n and sits near n/2 x the scattered/streamed ratio
    assert all(b > a for a, b in zip(ratios, ratios[1:]))
    assert ratios[0] > 1.15
    assert ratios[-1] > 2.0
    benchmark.extra_info["improvement_factors"] = ratios


def test_bench_three_mirror_access_counts(benchmark):
    def sweep():
        out = {}
        for n in (3, 5, 7):
            trad = traditional_three_mirror(n)
            shif = shifted_three_mirror(n)
            out[n] = (
                max(
                    trad.reconstruction_plan([f]).num_read_accesses
                    for f in range(trad.n_disks)
                ),
                max(
                    shif.reconstruction_plan([f]).num_read_accesses
                    for f in range(shif.n_disks)
                ),
            )
        return out

    res = run_once(benchmark, sweep)
    for n, (trad_acc, shif_acc) in res.items():
        assert trad_acc == (n + 1) // 2
        assert shif_acc == 1
    benchmark.extra_info["accesses"] = {str(k): v for k, v in res.items()}
