"""Open-loop traffic: arrivals fire on the wall clock, not on completions.

The closed-loop probe of :func:`~repro.workloads.generator.user_read_stream`
answers "how fast is one read" — but the paper's availability claim is
about what a *population* of viewers experiences while the rebuild
runs, and a population does not slow down because the array is busy.
This module models that: seeded arrival processes generate timestamped
reads that are submitted at their arrival times regardless of
completion backpressure (the queues absorb the difference, which is
exactly where tail latency lives).

Three independently composable axes:

* **arrival process** — Poisson (memoryless) or on/off bursty (a
  Markov-modulated Poisson process, the standard self-similar-ish
  stand-in: exponential ON/OFF sojourns, arrivals only while ON at a
  rate inflated so the long-run mean matches);
* **diurnal curve** — a sinusoidal rate modulation applied by
  Lewis–Shedler thinning, so load peaks and troughs inside the serve
  window;
* **popularity** — Zipfian film popularity over stripes (rank 0 = the
  hottest title) with uniform element choice inside a stripe, or a
  pinned ``target_disk`` for the §III adversarial case.

Per-tenant mixes compose these: each :class:`TenantSpec` draws from its
own :class:`numpy.random.SeedSequence` child, so a tenant can be added
to the mix without perturbing any other tenant's stream — and the whole
arrival list is a pure function of ``(spec, seed)``, bit-identical
across processes (the WorkerPool bit-identity suite pins this).

The module also owns the serve tier's **SLO accounting**
(:class:`SLOAccountant`: streaming latency quantile gauges, goodput,
queue depth — wired into :mod:`repro.obs` and thus the Prometheus
endpoint) and the **rebuild throttling policies**
(:class:`TokenBucketThrottle`, :class:`LatencyTargetThrottle`) that
:meth:`repro.raidsim.controller.RaidController.rebuild` consults per
stripe to trade rebuild speed against tail latency.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from ..obs import default_recorder, default_registry
from .generator import UserRead

__all__ = [
    "TenantSpec",
    "DiurnalCurve",
    "open_arrivals",
    "SLOSummary",
    "SLOAccountant",
    "RebuildThrottle",
    "FixedThrottle",
    "TokenBucketThrottle",
    "LatencyTargetThrottle",
    "make_throttle",
]

ARRIVAL_PROCESSES = ("poisson", "bursty")


# ----------------------------------------------------------------------
# arrival processes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TenantSpec:
    """One workload class inside an open-loop mix.

    ``zipf_s = 0`` spreads reads uniformly over stripes; larger
    exponents concentrate them on the low-numbered (popular) titles.
    ``target_disk`` pins every read to one data disk — the §III
    adversarial stream — and is bounds-checked like
    :func:`~repro.workloads.generator.user_read_stream`.  The bursty
    process alternates exponential ON (``burst_on_s`` mean) and OFF
    (``burst_off_s`` mean) sojourns; ``rate_per_s`` is always the
    long-run mean rate.
    """

    name: str
    rate_per_s: float
    process: str = "poisson"
    zipf_s: float = 0.0
    target_disk: int | None = None
    burst_on_s: float = 2.0
    burst_off_s: float = 6.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.rate_per_s <= 0:
            raise ValueError(f"rate must be positive, got {self.rate_per_s}")
        if self.process not in ARRIVAL_PROCESSES:
            raise ValueError(
                f"unknown arrival process {self.process!r} "
                f"(expected one of {ARRIVAL_PROCESSES})"
            )
        if self.zipf_s < 0:
            raise ValueError(f"zipf_s must be >= 0, got {self.zipf_s}")
        if self.burst_on_s <= 0 or self.burst_off_s < 0:
            raise ValueError("burst sojourn means must be positive")


@dataclass(frozen=True)
class DiurnalCurve:
    """Sinusoidal load modulation: ``1 + amplitude * sin(2πt/period + phase)``.

    ``amplitude`` must sit in ``[0, 1)`` so the rate never goes
    negative; the peak factor ``1 + amplitude`` is what the thinning
    envelope uses.
    """

    amplitude: float = 0.5
    period_s: float = 86_400.0
    phase: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError(f"amplitude must be in [0, 1), got {self.amplitude}")
        if self.period_s <= 0:
            raise ValueError(f"period must be positive, got {self.period_s}")

    @property
    def peak_factor(self) -> float:
        return 1.0 + self.amplitude

    def factor(self, t: np.ndarray) -> np.ndarray:
        """Rate multiplier at time(s) ``t`` (vectorized)."""
        return 1.0 + self.amplitude * np.sin(
            2.0 * np.pi * np.asarray(t) / self.period_s + self.phase
        )


def _homogeneous_arrivals(
    rate_per_s: float, duration_s: float, rng: np.random.Generator
) -> np.ndarray:
    """Poisson arrival instants in ``[0, duration_s)`` at a constant rate."""
    chunk = max(16, int(rate_per_s * duration_s * 1.25) + 16)
    times = np.empty(0, dtype=np.float64)
    t = 0.0
    while t < duration_s:
        gaps = rng.exponential(1.0 / rate_per_s, size=chunk)
        new = t + np.cumsum(gaps)
        times = np.concatenate([times, new])
        t = float(new[-1])
    return times[times < duration_s]


def _onoff_rate_fn(
    spec: TenantSpec, duration_s: float, rng: np.random.Generator
):
    """Materialize the MMPP ON/OFF timeline; returns ``(rate(t), peak)``.

    The ON-state rate is inflated by ``(on + off) / on`` so the
    long-run mean over the alternating sojourns equals ``rate_per_s``.
    """
    on, off = spec.burst_on_s, spec.burst_off_s
    burst_rate = spec.rate_per_s * (on + off) / on
    edges = [0.0]
    t = 0.0
    while t < duration_s:
        t += float(rng.exponential(on))  # ON sojourn
        edges.append(min(t, duration_s))
        t += float(rng.exponential(off))  # OFF sojourn
        edges.append(min(t, duration_s))
    bounds = np.array(edges[1:], dtype=np.float64)

    def rate(times: np.ndarray) -> np.ndarray:
        # even interval index (counting from 0) = ON
        idx = np.searchsorted(bounds, times, side="right")
        return np.where(idx % 2 == 0, burst_rate, 0.0)

    return rate, burst_rate


def _tenant_arrival_times(
    spec: TenantSpec,
    duration_s: float,
    diurnal: DiurnalCurve | None,
    rng: np.random.Generator,
) -> np.ndarray:
    """One tenant's arrival instants via Lewis–Shedler thinning.

    Candidates come from a homogeneous process at the joint peak rate
    (process peak × diurnal peak); each survives with probability
    ``rate(t) / peak``.  Everything is a pure function of the rng
    stream, so the times are bit-reproducible.
    """
    if spec.process == "bursty":
        rate_fn, peak = _onoff_rate_fn(spec, duration_s, rng)
    else:
        base = spec.rate_per_s
        rate_fn, peak = (lambda t: np.full(np.shape(t), base)), base
    if diurnal is not None:
        inner = rate_fn
        rate_fn = lambda t: inner(t) * diurnal.factor(t)  # noqa: E731
        peak *= diurnal.peak_factor
    candidates = _homogeneous_arrivals(peak, duration_s, rng)
    accept = rng.random(candidates.size) * peak < rate_fn(candidates)
    return candidates[accept]


def _zipf_stripes(
    n_stripes: int, s: float, count: int, rng: np.random.Generator
) -> np.ndarray:
    """``count`` stripe picks under a Zipf(s) popularity law (rank 0 hottest)."""
    if s <= 0:
        return rng.integers(0, n_stripes, size=count)
    weights = (np.arange(1, n_stripes + 1, dtype=np.float64)) ** (-s)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    return np.searchsorted(cdf, rng.random(count), side="right")


def open_arrivals(
    n: int,
    n_stripes: int,
    duration_s: float,
    tenants,
    diurnal: DiurnalCurve | None = None,
    seed: int = 0,
) -> list[UserRead]:
    """The merged open-loop arrival stream of a tenant mix.

    Each tenant draws from its own :class:`numpy.random.SeedSequence`
    child of ``seed`` (spawn order = tenant order), so streams are
    independent and the merge is a pure function of
    ``(n, n_stripes, duration_s, tenants, diurnal, seed)`` —
    bit-identical in any process.  The merge sort is stable, so
    same-instant arrivals keep tenant order.
    """
    tenants = tuple(tenants)
    if not tenants:
        raise ValueError("need at least one tenant")
    names = [t.name for t in tenants]
    if len(set(names)) != len(names):
        raise ValueError(f"tenant names must be unique, got {names}")
    if duration_s <= 0:
        raise ValueError(f"duration must be positive, got {duration_s}")
    for spec in tenants:
        if spec.target_disk is not None and not 0 <= spec.target_disk < n:
            raise ValueError(
                f"target_disk must be in [0, {n}), got {spec.target_disk} "
                f"(tenant {spec.name!r})"
            )
    reads: list[UserRead] = []
    children = np.random.SeedSequence(seed).spawn(len(tenants))
    for spec, child in zip(tenants, children):
        rng = np.random.default_rng(child)
        times = _tenant_arrival_times(spec, duration_s, diurnal, rng)
        count = times.size
        stripes = _zipf_stripes(n_stripes, spec.zipf_s, count, rng)
        if spec.target_disk is None:
            disks = rng.integers(0, n, size=count)
        else:
            disks = np.full(count, spec.target_disk, dtype=np.int64)
        rows = rng.integers(0, n, size=count)
        reads.extend(
            UserRead(float(t), int(st), int(i), int(j), tenant=spec.name)
            for t, st, i, j in zip(times, stripes, disks, rows)
        )
    reads.sort(key=lambda r: r.time)
    return reads


# ----------------------------------------------------------------------
# SLO accounting
# ----------------------------------------------------------------------

#: streaming-estimate bucket bounds: 0.5 ms .. ~67 s, quarter-decades
SLO_BUCKETS = tuple(float(0.0005 * 2**k) for k in range(18))


@dataclass(frozen=True)
class SLOSummary:
    """What the users saw: exact percentiles, goodput, misses.

    Latency aggregates are ``NaN`` when nothing completed (the
    zero-sample contract shared with
    :class:`~repro.raidsim.reconstruction.OnlineResult`); JSON emitters
    coerce them to ``null``.  Percentiles are *exact* (sorted-sample),
    not the streaming estimates the live gauges show — the summary is
    the bit-reproducible artifact, the gauges are the mid-flight view.
    """

    served: int
    failed: int
    deadline_misses: int
    duration_s: float
    p50_s: float
    p99_s: float
    p999_s: float
    mean_s: float
    max_s: float
    #: reads that met the deadline (all of them when no deadline is
    #: set), per second of serve window
    goodput_rps: float
    per_tenant_served: tuple[tuple[str, int], ...] = ()

    def to_dict(self) -> dict:
        import math

        def fin(x: float):
            return x if math.isfinite(x) else None

        return {
            "served": self.served,
            "failed": self.failed,
            "deadline_misses": self.deadline_misses,
            "duration_s": self.duration_s,
            "p50_s": fin(self.p50_s),
            "p99_s": fin(self.p99_s),
            "p999_s": fin(self.p999_s),
            "mean_s": fin(self.mean_s),
            "max_s": fin(self.max_s),
            "goodput_rps": self.goodput_rps,
            "per_tenant_served": dict(self.per_tenant_served),
        }


class SLOAccountant:
    """Streaming SLO accounting for one serve run.

    Every completed read lands here: a latency histogram and per-tenant
    counters go to :mod:`repro.obs` (hence the Prometheus endpoint),
    and every ``gauge_every`` completions the live
    ``serve.p50/p99/p999_latency_s`` gauges are refreshed from a
    fixed-bucket streaming estimate (upper bucket bound — monotone,
    deterministic, O(1) memory).  :meth:`summary` computes the final
    exact percentiles from the retained samples.
    """

    def __init__(
        self,
        deadline_s: float | None = None,
        registry=None,
        gauge_every: int = 64,
        recorder=None,
    ) -> None:
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(f"deadline must be positive, got {deadline_s}")
        self.deadline_s = deadline_s
        # flight-recorder series: per-tenant latency + queue depth over
        # the simulated clock, fed when callers pass `t_s` to `record`
        # (None when no recorder is installed — nothing is retained)
        self._rec = recorder if recorder is not None else default_recorder()
        self._ts_lat: dict[str, object] = {}
        self._ts_depth = (
            self._rec.series(
                "serve.queue_depth", "in-flight + queued requests over simulated time"
            )
            if self._rec is not None
            else None
        )
        self.gauge_every = max(1, gauge_every)
        self._lat: list[float] = []
        self._misses = 0
        self._failed = 0
        self._tenants: dict[str, int] = {}
        self._bounds = np.array(SLO_BUCKETS)
        self._counts = np.zeros(len(SLO_BUCKETS) + 1, dtype=np.int64)
        reg = registry if registry is not None else default_registry()
        self._obs_reads = reg.counter("serve.reads_total", "open-loop reads served")
        self._obs_miss = reg.counter(
            "serve.deadline_miss_total", "reads completing past the SLO deadline"
        ).labels()
        self._obs_hist = reg.histogram(
            "serve.read_latency_s",
            "arrival-to-completion latency of open-loop reads",
            buckets=SLO_BUCKETS,
        ).labels()
        quant = reg.gauge(
            "serve.latency_quantile_s",
            "streaming latency quantile estimate (bucket upper bound)",
        )
        self._obs_q = {
            0.50: quant.labels(q="0.5"),
            0.99: quant.labels(q="0.99"),
            0.999: quant.labels(q="0.999"),
        }
        self._obs_depth = reg.gauge(
            "serve.queue_depth", "in-flight + queued requests at last completion"
        ).labels()

    @property
    def served(self) -> int:
        return len(self._lat)

    def record(self, latency_s: float, tenant: str = "", t_s: float | None = None) -> None:
        """Account one completed read.

        ``t_s`` is the completion's simulated time; when given (and a
        flight recorder is installed) the latency also lands in the
        per-tenant ``serve.latency_s`` timeseries, which is what the
        dashboard's p99-over-time curves read.
        """
        if self._rec is not None and t_s is not None:
            handle = self._ts_lat.get(tenant)
            if handle is None:
                handle = self._rec.series(
                    "serve.latency_s",
                    "open-loop read latency over simulated time",
                    tenant=tenant or "all",
                )
                self._ts_lat[tenant] = handle
            handle.observe(t_s, latency_s)
        self._lat.append(latency_s)
        self._tenants[tenant] = self._tenants.get(tenant, 0) + 1
        self._counts[int(np.searchsorted(self._bounds, latency_s, side="left"))] += 1
        self._obs_reads.inc(1.0, tenant=tenant or "all")
        self._obs_hist.observe(latency_s)
        if self.deadline_s is not None and latency_s > self.deadline_s:
            self._misses += 1
            self._obs_miss.inc()
        if len(self._lat) % self.gauge_every == 0:
            for q, gauge in self._obs_q.items():
                gauge.set(self.streaming_quantile(q))

    def record_failure(self, n: int = 1) -> None:
        """Account reads that errored out after all retries."""
        self._failed += n

    def observe_queue_depth(self, depth: int, t_s: float | None = None) -> None:
        self._obs_depth.set(depth)
        if self._ts_depth is not None and t_s is not None:
            self._ts_depth.observe(t_s, depth)

    def streaming_quantile(self, q: float) -> float:
        """Bucketed quantile estimate: upper bound of the covering bucket."""
        total = int(self._counts.sum())
        if total == 0:
            return float("nan")
        cum = np.cumsum(self._counts)
        idx = int(np.searchsorted(cum, q * total, side="left"))
        if idx >= len(self._bounds):
            return float(max(self._lat))
        return float(self._bounds[idx])

    def summary(self, duration_s: float) -> SLOSummary:
        """The run's exact, bit-reproducible SLO verdict."""
        served = len(self._lat)
        if served:
            lat = np.array(self._lat)
            p50, p99, p999 = (
                float(x) for x in np.percentile(lat, (50.0, 99.0, 99.9))
            )
            mean_s, max_s = float(lat.mean()), float(lat.max())
        else:
            p50 = p99 = p999 = mean_s = max_s = float("nan")
        good = served - self._misses
        return SLOSummary(
            served=served,
            failed=self._failed,
            deadline_misses=self._misses,
            duration_s=duration_s,
            p50_s=p50,
            p99_s=p99,
            p999_s=p999,
            mean_s=mean_s,
            max_s=max_s,
            goodput_rps=good / duration_s if duration_s > 0 else 0.0,
            per_tenant_served=tuple(sorted(self._tenants.items())),
        )


# ----------------------------------------------------------------------
# rebuild throttling / admission policies
# ----------------------------------------------------------------------


@runtime_checkable
class RebuildThrottle(Protocol):
    """What :meth:`RaidController.rebuild` consults before each stripe.

    ``delay_s(now, n_ios)`` returns the pre-submit pause in seconds for
    a stripe whose phase issues ``n_ios`` reads at simulated time
    ``now``.  Policies with an ``observe(latency_s)`` method are fed
    every completed user read by the serve tier (latency feedback).
    """

    def delay_s(self, now: float, n_ios: int = 1) -> float: ...


@dataclass
class FixedThrottle:
    """The md ``speed_limit`` analogue: a constant pre-stripe pause."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")

    def delay_s(self, now: float, n_ios: int = 1) -> float:
        return self.delay


class TokenBucketThrottle:
    """Token bucket on rebuild I/O: at most ``ios_per_s`` sustained.

    Each stripe's phase reads spend ``n_ios`` tokens; the bucket refills
    at ``ios_per_s`` up to ``burst`` (default: one second's worth).
    Debt is carried (tokens go negative), so the returned delay is
    exactly the time until the spend is covered — the classic
    rate-limit shape, deterministic given the call sequence.
    """

    def __init__(self, ios_per_s: float, burst: float | None = None) -> None:
        if ios_per_s <= 0:
            raise ValueError(f"ios_per_s must be positive, got {ios_per_s}")
        self.ios_per_s = ios_per_s
        self.burst = ios_per_s if burst is None else burst
        if self.burst <= 0:
            raise ValueError(f"burst must be positive, got {self.burst}")
        self._tokens = self.burst
        self._last = 0.0

    def delay_s(self, now: float, n_ios: int = 1) -> float:
        elapsed = max(0.0, now - self._last)
        self._last = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.ios_per_s)
        self._tokens -= n_ios
        if self._tokens >= 0.0:
            return 0.0
        return -self._tokens / self.ios_per_s


class LatencyTargetThrottle:
    """Latency-target feedback: back off the rebuild when p99 overshoots.

    Keeps a window of recent user-read latencies (fed via
    :meth:`observe`); each stripe consults the window's p99 and adapts
    the pre-stripe delay multiplicatively — double on overshoot (capped
    at ``max_delay_s``), halve on undershoot (floored back to zero) —
    the AIMD-flavoured controller md users approximate by hand with
    ``speed_limit_max``.  Deterministic given the observe/delay call
    sequence.
    """

    def __init__(
        self,
        target_p99_s: float,
        window: int = 128,
        base_delay_s: float = 0.01,
        max_delay_s: float = 1.0,
    ) -> None:
        if target_p99_s <= 0:
            raise ValueError(f"target must be positive, got {target_p99_s}")
        if not 0 < base_delay_s <= max_delay_s:
            raise ValueError("need 0 < base_delay_s <= max_delay_s")
        self.target_p99_s = target_p99_s
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self._recent: deque[float] = deque(maxlen=window)
        self._delay = 0.0

    def observe(self, latency_s: float) -> None:
        self._recent.append(latency_s)

    def delay_s(self, now: float, n_ios: int = 1) -> float:
        if self._recent:
            p99 = float(np.percentile(np.array(self._recent), 99.0))
            if p99 > self.target_p99_s:
                self._delay = min(
                    self.max_delay_s, max(self.base_delay_s, self._delay * 2.0)
                )
            else:
                half = self._delay / 2.0
                self._delay = half if half >= self.base_delay_s else 0.0
        return self._delay


def make_throttle(spec: str):
    """Build a fresh throttle from its CLI spec string.

    ``none`` — no throttling (returns ``0.0``, the rebuild default);
    ``fixed:SECONDS`` — :class:`FixedThrottle`;
    ``token:IOS_PER_S`` — :class:`TokenBucketThrottle`;
    ``latency:TARGET_P99_MS`` — :class:`LatencyTargetThrottle`.

    Policies are stateful, so call this once per run — sharing one
    instance across arrangements would leak state between them.
    """
    if spec == "none":
        return 0.0
    kind, sep, arg = spec.partition(":")
    if not sep:
        raise ValueError(
            f"malformed throttle spec {spec!r} (expected KIND:VALUE or 'none')"
        )
    try:
        value = float(arg)
    except ValueError:
        raise ValueError(f"throttle value {arg!r} is not a number") from None
    if kind == "fixed":
        return FixedThrottle(value)
    if kind == "token":
        return TokenBucketThrottle(value)
    if kind == "latency":
        return LatencyTargetThrottle(value / 1e3)
    raise ValueError(
        f"unknown throttle kind {kind!r} (expected fixed, token or latency)"
    )
