"""Heapq-vs-typed calendar equivalence, property-based.

The typed calendar is an internal representation change only: any
workload replayed on both calendars must produce identical completed
sequences, clocks, per-disk busy times and exported traces — serially
and across the :class:`repro.parallel.WorkerPool` fork boundary
(workers inherit the module state of the parent at fork time, so this
also guards against calendar state leaking through ``fork``).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.disksim.array import ElementArray
from repro.disksim.disk import DiskParameters
from repro.disksim.request import IOKind
from repro.disksim.scheduler import (
    ElevatorScheduler,
    FIFOScheduler,
    PriorityScheduler,
)
from repro.parallel import WorkerPool

_SCHEDULERS = {
    "fifo": FIFOScheduler,
    "elevator": ElevatorScheduler,
    "priority": PriorityScheduler,
}

_ELEMENT = 1 << 16


def _run_workload(spec):
    """Replay one workload spec; module-level so it crosses ``fork``.

    ``spec`` is ``(calendar, n_disks, scheduler_name, ops, deferred)``
    with ``ops`` a tuple of ``(disk, slot, is_write, priority)`` and
    ``deferred`` a tuple of ``(delay, disk, slot)`` submitted through
    ``submit_at`` (the ``OP_CALL`` escape hatch on the typed calendar).
    """
    calendar, n_disks, scheduler_name, ops, deferred = spec
    arr = ElementArray(
        n_disks,
        _ELEMENT,
        DiskParameters.savvio_10k3(),
        _SCHEDULERS[scheduler_name],
        calendar=calendar,
    )
    for disk, slot, is_write, priority in ops:
        arr.submit(
            arr.element_request(
                disk,
                slot,
                IOKind.WRITE if is_write else IOKind.READ,
                priority=priority,
            )
        )
    sim = arr.sim
    for delay, disk, slot in deferred:
        sim.submit_at(delay, arr.element_request(disk, slot, IOKind.READ))
    arr.run()
    return (
        sim.now,
        tuple(
            (r.disk, r.offset, r.size, r.kind.value, r.start_time, r.finish_time)
            for r in sim.completed
        ),
        tuple(server.model.busy_time for server in sim.disks),
    )


@st.composite
def workload(draw):
    n_disks = draw(st.integers(2, 6))
    ops = draw(
        st.lists(
            st.tuples(
                st.integers(0, n_disks - 1),
                st.integers(0, 24),
                st.booleans(),
                st.sampled_from([0, 10]),
            ),
            min_size=0,
            max_size=120,
        )
    )
    deferred = draw(
        st.lists(
            st.tuples(
                st.floats(0.0, 0.05, allow_nan=False),
                st.integers(0, n_disks - 1),
                st.integers(0, 24),
            ),
            min_size=0,
            max_size=8,
        )
    )
    scheduler = draw(st.sampled_from(sorted(_SCHEDULERS)))
    return n_disks, scheduler, tuple(ops), tuple(deferred)


@given(w=workload())
@settings(max_examples=60, deadline=None)
def test_heapq_and_typed_calendars_are_bit_identical(w):
    n_disks, scheduler, ops, deferred = w
    heapq_sig = _run_workload(("heapq", n_disks, scheduler, ops, deferred))
    typed_sig = _run_workload(("typed", n_disks, scheduler, ops, deferred))
    assert heapq_sig == typed_sig


@pytest.fixture(scope="module")
def pool():
    with WorkerPool(jobs=2) as p:
        yield p


@given(w=workload())
@settings(max_examples=15, deadline=None)
def test_calendar_identity_survives_fork_boundary(w, pool):
    """Workers replay the same spec in forked processes; parent replays
    it inline — all four signatures (2 calendars x 2 process modes)
    must agree."""
    n_disks, scheduler, ops, deferred = w
    specs = [
        ("heapq", n_disks, scheduler, ops, deferred),
        ("typed", n_disks, scheduler, ops, deferred),
    ]
    forked = pool.map(_run_workload, specs)
    inline = [_run_workload(spec) for spec in specs]
    assert forked[0] == forked[1] == inline[0] == inline[1]


def test_exported_traces_identical_across_calendars(tmp_path):
    """The chrome-trace export is part of the bit-identity contract."""
    from repro.obs import Tracer, chrome_trace

    exports = {}
    for calendar in ("heapq", "typed"):
        rng = np.random.default_rng(11)
        tracer = Tracer()
        arr = ElementArray(
            4,
            _ELEMENT,
            DiskParameters.savvio_10k3(),
            ElevatorScheduler,
            tracer=tracer.group("ab"),
            calendar=calendar,
        )
        for d, s in zip(rng.integers(0, 4, 300), rng.integers(0, 64, 300)):
            arr.submit(arr.element_request(int(d), int(s), IOKind.READ))
        arr.run()
        exports[calendar] = chrome_trace(tracer)
    assert exports["heapq"] == exports["typed"]
