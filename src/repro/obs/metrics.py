"""Lightweight metrics: labelled counters, gauges and histograms.

The simulator's hot paths (event dispatch, batch coalescing, retry
bookkeeping) want to *count things* without paying for a metrics
framework.  This module provides the three classic instrument kinds
with an explicit cost model:

* instruments are created once (registry lookups are get-or-create and
  idempotent) and **bound children** (:meth:`Counter.labels`) are
  cached, so a hot loop holds a direct reference whose ``inc`` is one
  dict store;
* with observability disabled (``REPRO_OBS=0`` or
  :func:`set_obs_enabled`), :func:`default_registry` returns the
  process-wide :data:`NULL_REGISTRY` whose instruments are a single
  shared no-op object — components constructed while disabled carry
  null instruments forever, which is the "compiled to the null sink"
  contract ``benchmarks/perfbench.py --obs-overhead`` enforces;
* a registry :meth:`~MetricsRegistry.snapshot` is plain JSON data, and
  :meth:`~MetricsRegistry.merge` folds another snapshot in — this is
  how campaign workers ship their metrics back to the parent without
  touching any seeded state (see ``repro.raidsim.campaign``).

Nothing here imports the rest of ``repro``; the observability layer
sits below every other subsystem.
"""

from __future__ import annotations

import os
from bisect import bisect_left
from contextlib import contextmanager

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_INSTRUMENT",
    "NULL_REGISTRY",
    "obs_enabled",
    "set_obs_enabled",
    "default_registry",
    "scoped_registry",
    "DEFAULT_BUCKETS",
]

#: generic latency-ish buckets (seconds); callers pass their own for
#: dimensionless ratios or byte counts
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels: dict) -> tuple:
    """Canonical hashable form of a label set."""
    if not labels:
        return ()
    return tuple(sorted(labels.items()))


class _Instrument:
    """Shared naming/labelling machinery of the three instrument kinds."""

    kind = "abstract"
    __slots__ = ("name", "help", "_values", "_children")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: dict = {}
        self._children: dict = {}

    def labels(self, **labels):
        """A bound child for one label set — cache it on hot paths."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._children[key] = self._make_child(key)
        return child

    def _make_child(self, key):  # pragma: no cover - abstract
        raise NotImplementedError

    def label_sets(self) -> list[dict]:
        return [dict(key) for key in self._values]


class _BoundCounter:
    __slots__ = ("_values", "_key")

    def __init__(self, values: dict, key: tuple) -> None:
        self._values = values
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        values = self._values
        key = self._key
        values[key] = values.get(key, 0.0) + amount


class Counter(_Instrument):
    """A monotonically increasing count, optionally per label set."""

    kind = "counter"
    __slots__ = ()

    def _make_child(self, key) -> _BoundCounter:
        return _BoundCounter(self._values, key)

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set."""
        return sum(self._values.values())


class _BoundGauge:
    __slots__ = ("_values", "_key")

    def __init__(self, values: dict, key: tuple) -> None:
        self._values = values
        self._key = key

    def set(self, value: float) -> None:
        self._values[self._key] = value

    def add(self, amount: float) -> None:
        values = self._values
        key = self._key
        values[key] = values.get(key, 0.0) + amount


class Gauge(_Instrument):
    """A point-in-time value (queue depth, worker count, high-water)."""

    kind = "gauge"
    __slots__ = ()

    def _make_child(self, key) -> _BoundGauge:
        return _BoundGauge(self._values, key)

    def set(self, value: float, **labels) -> None:
        self._values[_label_key(labels)] = value

    def add(self, amount: float, **labels) -> None:
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0.0)


class _HistState:
    """Bucket counts plus running aggregates for one label set."""

    __slots__ = ("counts", "sum", "count", "min", "max")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # +1 for the +inf bucket
        self.sum = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")


class _BoundHistogram:
    __slots__ = ("_bounds", "_state")

    def __init__(self, bounds: tuple, state: _HistState) -> None:
        self._bounds = bounds
        self._state = state

    def observe(self, value: float) -> None:
        state = self._state
        state.counts[bisect_left(self._bounds, value)] += 1
        state.sum += value
        state.count += 1
        if value < state.min:
            state.min = value
        if value > state.max:
            state.max = value

    def observe_many(self, values) -> None:
        """Batch observation, state-identical to a loop of :meth:`observe`.

        ``values`` is any sequence (or numpy array) of floats.  Bucket
        assignment vectorises on large batches, but the running ``sum``
        still accumulates value by value in input order, so batch and
        per-value observation leave bit-identical histogram state —
        the contract the engine's vectorized drain path relies on.
        """
        vlist = values.tolist() if hasattr(values, "tolist") else list(values)
        n = len(vlist)
        if not n:
            return
        state = self._state
        bounds = self._bounds
        counts = state.counts
        if n >= 64:
            import numpy as np

            arr = values if hasattr(values, "dtype") else np.asarray(vlist)
            idx = np.searchsorted(np.asarray(bounds), arr, side="left")
            for i, c in enumerate(np.bincount(idx, minlength=len(counts)).tolist()):
                if c:
                    counts[i] += c
        else:
            for v in vlist:
                counts[bisect_left(bounds, v)] += 1
        total = state.sum
        for v in vlist:
            total += v
        state.sum = total
        state.count += n
        lo = min(vlist)
        hi = max(vlist)
        if lo < state.min:
            state.min = lo
        if hi > state.max:
            state.max = hi


class Histogram(_Instrument):
    """A distribution over fixed buckets (upper bounds, +inf implicit)."""

    kind = "histogram"
    __slots__ = ("buckets",)

    def __init__(
        self, name: str, help: str = "", buckets: tuple = DEFAULT_BUCKETS
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(float(b) for b in buckets)
        if list(bounds) != sorted(set(bounds)):
            raise ValueError(f"histogram buckets must be strictly increasing: {buckets}")
        self.buckets = bounds

    def _make_child(self, key) -> _BoundHistogram:
        state = self._values.get(key)
        if state is None:
            state = self._values[key] = _HistState(len(self.buckets))
        return _BoundHistogram(self.buckets, state)

    def observe(self, value: float, **labels) -> None:
        self.labels(**labels).observe(value)

    def observe_many(self, values, **labels) -> None:
        """Batch :meth:`observe` — see :meth:`_BoundHistogram.observe_many`."""
        self.labels(**labels).observe_many(values)

    def state(self, **labels) -> _HistState | None:
        return self._values.get(_label_key(labels))


class _NullInstrument:
    """One shared do-nothing stand-in for every instrument kind."""

    __slots__ = ()

    def labels(self, **labels) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0, **labels) -> None:
        pass

    def set(self, value: float, **labels) -> None:
        pass

    def add(self, amount: float, **labels) -> None:
        pass

    def observe(self, value: float, **labels) -> None:
        pass

    def observe_many(self, values, **labels) -> None:
        pass

    def value(self, **labels) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0


NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Process-wide (or scoped) home of named instruments.

    Lookups are get-or-create: asking twice for the same name returns
    the same object, and asking with a conflicting kind raises — names
    are a global contract, not a per-module convenience.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, _Instrument] = {}

    def _get(self, cls, name: str, help: str, **kwargs):
        inst = self._instruments.get(name)
        if inst is not None:
            if not isinstance(inst, cls):
                raise ValueError(
                    f"metric {name!r} already registered as a {inst.kind}"
                )
            return inst
        inst = self._instruments[name] = cls(name, help, **kwargs)
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(Histogram, name, help, buckets=buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Plain-data (JSON-able) view of every instrument's state."""
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, inst in sorted(self._instruments.items()):
            if isinstance(inst, Counter):
                out["counters"][name] = {
                    "help": inst.help,
                    "values": [
                        {"labels": dict(k), "value": v}
                        for k, v in sorted(inst._values.items())
                    ],
                }
            elif isinstance(inst, Gauge):
                out["gauges"][name] = {
                    "help": inst.help,
                    "values": [
                        {"labels": dict(k), "value": v}
                        for k, v in sorted(inst._values.items())
                    ],
                }
            elif isinstance(inst, Histogram):
                out["histograms"][name] = {
                    "help": inst.help,
                    "buckets": list(inst.buckets),
                    "values": [
                        {
                            "labels": dict(k),
                            "counts": list(s.counts),
                            "sum": s.sum,
                            "count": s.count,
                            "min": s.min if s.count else None,
                            "max": s.max if s.count else None,
                        }
                        for k, s in sorted(inst._values.items())
                    ],
                }
        return out

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` into this registry.

        Counters and histogram states add; gauges take the snapshot's
        value (last write wins).  Histogram bucket layouts must match —
        a mismatch means two code versions disagree about a metric and
        deserves a loud error, not silent skew.
        """
        if not snapshot:
            return
        for name, data in snapshot.get("counters", {}).items():
            counter = self.counter(name, data.get("help", ""))
            for entry in data["values"]:
                counter.inc(entry["value"], **entry["labels"])
        for name, data in snapshot.get("gauges", {}).items():
            gauge = self.gauge(name, data.get("help", ""))
            for entry in data["values"]:
                gauge.set(entry["value"], **entry["labels"])
        for name, data in snapshot.get("histograms", {}).items():
            hist = self.histogram(
                name, data.get("help", ""), buckets=tuple(data["buckets"])
            )
            if list(hist.buckets) != list(data["buckets"]):
                raise ValueError(
                    f"histogram {name!r}: bucket layout mismatch on merge"
                )
            for entry in data["values"]:
                key = _label_key(entry["labels"])
                state = hist._values.get(key)
                if state is None:
                    state = hist._values[key] = _HistState(len(hist.buckets))
                for i, c in enumerate(entry["counts"]):
                    state.counts[i] += c
                state.sum += entry["sum"]
                state.count += entry["count"]
                if entry["min"] is not None and entry["min"] < state.min:
                    state.min = entry["min"]
                if entry["max"] is not None and entry["max"] > state.max:
                    state.max = entry["max"]

    def reset(self) -> None:
        self._instruments.clear()


class NullRegistry:
    """The zero-overhead sink: every instrument is :data:`NULL_INSTRUMENT`."""

    enabled = False

    def counter(self, name: str, help: str = "") -> _NullInstrument:
        return NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "") -> _NullInstrument:
        return NULL_INSTRUMENT

    def histogram(
        self, name: str, help: str = "", buckets: tuple = DEFAULT_BUCKETS
    ) -> _NullInstrument:
        return NULL_INSTRUMENT

    def snapshot(self) -> dict:
        return {}

    def merge(self, snapshot: dict) -> None:
        pass

    def reset(self) -> None:
        pass

    def __contains__(self, name: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0


NULL_REGISTRY = NullRegistry()

_enabled = os.environ.get("REPRO_OBS", "1") != "0"
_default = MetricsRegistry()


def obs_enabled() -> bool:
    """Whether observability is globally on (``REPRO_OBS`` env toggle)."""
    return _enabled


def set_obs_enabled(enabled: bool) -> bool:
    """Flip the global observability switch; returns the old value.

    Components read the switch **at construction time** (they capture
    instruments, or skip creating hooks entirely), so flipping it
    affects objects built afterwards — exactly like ``REPRO_BATCH``.
    """
    global _enabled
    old = _enabled
    _enabled = bool(enabled)
    return old


def default_registry():
    """The process default registry — :data:`NULL_REGISTRY` when disabled."""
    return _default if _enabled else NULL_REGISTRY


@contextmanager
def scoped_registry():
    """Swap in a fresh default registry for the duration of a block.

    Campaign workers run each sweep point under a scope so the point's
    metrics can be snapshotted in isolation and merged by the parent in
    deterministic seed order.  With observability disabled the scope
    yields the null registry and records nothing.
    """
    global _default
    if not _enabled:
        yield NULL_REGISTRY
        return
    saved = _default
    _default = MetricsRegistry()
    try:
        yield _default
    finally:
        _default = saved
