"""Bench: Fig. 10 — write throughput under random large writes.

(a) mirror method; (b) mirror method with parity.  The claims under
test: traditional and shifted are "about the same to a large extent",
both rise with n, and the parity variant runs well below the plain
mirror because its partial-row writes read old data and parity first.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments.fig10 import run_a, run_b

N_VALUES = (3, 4, 5, 6, 7)
N_OPS = 200


def test_bench_fig10a_mirror_writes(benchmark):
    result = run_once(benchmark, run_a, N_VALUES, N_OPS)
    assert result.data["intact"]
    trad = result.data["traditional mirror (MB/s)"]
    ratios = result.data["shifted/traditional"]
    assert all(0.85 < r <= 1.02 for r in ratios)
    assert all(b > a for a, b in zip(trad, trad[1:]))  # grows with n
    benchmark.extra_info["shifted_over_traditional"] = ratios


def test_bench_fig10b_mirror_parity_writes(benchmark):
    result = run_once(benchmark, run_b, N_VALUES, N_OPS)
    assert result.data["intact"]
    trad = result.data["traditional mirror+parity (MB/s)"]
    ratios = result.data["shifted/traditional"]
    assert all(0.9 < r <= 1.02 for r in ratios)
    assert all(b > a for a, b in zip(trad, trad[1:]))
    benchmark.extra_info["shifted_over_traditional"] = ratios


def test_bench_fig10_parity_below_mirror(benchmark):
    def both():
        return run_a((5,), 120), run_b((5,), 120)

    a, b = run_once(benchmark, both)
    mirror = a.data["traditional mirror (MB/s)"][0]
    parity = b.data["traditional mirror+parity (MB/s)"][0]
    assert parity < 0.6 * mirror
    benchmark.extra_info["mirror_mbps"] = mirror
    benchmark.extra_info["parity_mbps"] = parity
